package interval

import (
	"math"
	"testing"
)

func TestNew(t *testing.T) {
	t.Parallel()
	if _, err := New(5, 3); err == nil {
		t.Fatal("New(5,3) should fail")
	}
	iv, err := New(3, 5)
	if err != nil {
		t.Fatalf("New(3,5): %v", err)
	}
	if iv.Lo != 3 || iv.Hi != 5 {
		t.Fatalf("got %v", iv)
	}
}

func TestMustNewPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(2,1) should panic")
		}
	}()
	MustNew(2, 1)
}

func TestPoint(t *testing.T) {
	t.Parallel()
	p := Point(42)
	if p.Lo != 42 || p.Hi != 42 {
		t.Fatalf("got %v", p)
	}
	if p.Count() != 1 {
		t.Fatalf("count = %d", p.Count())
	}
}

func TestCount(t *testing.T) {
	t.Parallel()
	cases := []struct {
		iv   Interval
		want uint64
	}{
		{MustNew(0, 0), 1},
		{MustNew(0, 9), 10},
		{MustNew(5, 5), 1},
		{MustNew(0, math.MaxUint64), math.MaxUint64}, // saturated
		{MustNew(1, math.MaxUint64), math.MaxUint64},
	}
	for _, c := range cases {
		if got := c.iv.Count(); got != c.want {
			t.Errorf("Count(%v) = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	t.Parallel()
	iv := MustNew(10, 20)
	for _, v := range []uint64{10, 15, 20} {
		if !iv.Contains(v) {
			t.Errorf("%v should contain %d", iv, v)
		}
	}
	for _, v := range []uint64{0, 9, 21, math.MaxUint64} {
		if iv.Contains(v) {
			t.Errorf("%v should not contain %d", iv, v)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	t.Parallel()
	outer := MustNew(10, 20)
	cases := []struct {
		inner Interval
		want  bool
	}{
		{MustNew(10, 20), true},
		{MustNew(12, 18), true},
		{MustNew(10, 10), true},
		{MustNew(9, 20), false},
		{MustNew(10, 21), false},
		{MustNew(0, 5), false},
	}
	for _, c := range cases {
		if got := outer.ContainsInterval(c.inner); got != c.want {
			t.Errorf("ContainsInterval(%v, %v) = %v, want %v", outer, c.inner, got, c.want)
		}
	}
}

func TestOverlapsAndAdjacent(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b          Interval
		over, adjacnt bool
	}{
		{MustNew(0, 5), MustNew(5, 9), true, false},
		{MustNew(0, 5), MustNew(6, 9), false, true},
		{MustNew(6, 9), MustNew(0, 5), false, true},
		{MustNew(0, 5), MustNew(7, 9), false, false},
		{MustNew(0, 9), MustNew(3, 4), true, false},
		{MustNew(0, 0), MustNew(0, 0), true, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.over {
			t.Errorf("Overlaps(%v, %v) = %v, want %v", c.a, c.b, got, c.over)
		}
		if got := c.b.Overlaps(c.a); got != c.over {
			t.Errorf("Overlaps(%v, %v) = %v, want %v (symmetric)", c.b, c.a, got, c.over)
		}
		if got := c.a.Adjacent(c.b); got != c.adjacnt {
			t.Errorf("Adjacent(%v, %v) = %v, want %v", c.a, c.b, got, c.adjacnt)
		}
	}
}

func TestAdjacentAtDomainEdges(t *testing.T) {
	t.Parallel()
	a := MustNew(0, math.MaxUint64-1)
	b := Point(math.MaxUint64)
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("intervals touching at MaxUint64 should be adjacent")
	}
}

func TestIntersect(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b Interval
		want Interval
		ok   bool
	}{
		{MustNew(0, 10), MustNew(5, 15), MustNew(5, 10), true},
		{MustNew(5, 15), MustNew(0, 10), MustNew(5, 10), true},
		{MustNew(0, 10), MustNew(10, 15), MustNew(10, 10), true},
		{MustNew(0, 10), MustNew(11, 15), Interval{}, false},
		{MustNew(3, 7), MustNew(0, 10), MustNew(3, 7), true},
	}
	for _, c := range cases {
		got, ok := c.a.Intersect(c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Intersect(%v, %v) = %v, %v; want %v, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestSubtract(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b Interval
		want []Interval
	}{
		{MustNew(0, 10), MustNew(20, 30), []Interval{MustNew(0, 10)}},
		{MustNew(0, 10), MustNew(0, 10), nil},
		{MustNew(0, 10), MustNew(0, 5), []Interval{MustNew(6, 10)}},
		{MustNew(0, 10), MustNew(5, 10), []Interval{MustNew(0, 4)}},
		{MustNew(0, 10), MustNew(3, 7), []Interval{MustNew(0, 2), MustNew(8, 10)}},
		{MustNew(5, 7), MustNew(0, 10), nil},
	}
	for _, c := range cases {
		got := c.a.Subtract(c.b)
		if len(got) != len(c.want) {
			t.Errorf("Subtract(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Subtract(%v, %v)[%d] = %v, want %v", c.a, c.b, i, got[i], c.want[i])
			}
		}
	}
}

func TestCompare(t *testing.T) {
	t.Parallel()
	cases := []struct {
		a, b Interval
		want int
	}{
		{MustNew(0, 5), MustNew(0, 5), 0},
		{MustNew(0, 5), MustNew(1, 5), -1},
		{MustNew(1, 5), MustNew(0, 5), 1},
		{MustNew(0, 4), MustNew(0, 5), -1},
		{MustNew(0, 6), MustNew(0, 5), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalString(t *testing.T) {
	t.Parallel()
	if got := Point(7).String(); got != "7" {
		t.Errorf("Point(7).String() = %q", got)
	}
	if got := MustNew(1, 9).String(); got != "[1, 9]" {
		t.Errorf("MustNew(1,9).String() = %q", got)
	}
}

func TestNewSetCanonicalizes(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(5, 10), MustNew(0, 3), MustNew(4, 4), MustNew(20, 30), MustNew(25, 35))
	want := []Interval{MustNew(0, 10), MustNew(20, 35)}
	got := s.Intervals()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestNewSetEmpty(t *testing.T) {
	t.Parallel()
	if !NewSet().Empty() {
		t.Fatal("NewSet() should be empty")
	}
	if NewSet().String() != "{}" {
		t.Fatalf("empty set string = %q", NewSet().String())
	}
}

func TestSetContains(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(0, 5), MustNew(10, 15), MustNew(100, 100))
	for _, v := range []uint64{0, 5, 10, 15, 100} {
		if !s.Contains(v) {
			t.Errorf("set should contain %d", v)
		}
	}
	for _, v := range []uint64{6, 9, 16, 99, 101, math.MaxUint64} {
		if s.Contains(v) {
			t.Errorf("set should not contain %d", v)
		}
	}
}

func TestSetMinMax(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(10, 15), MustNew(0, 5))
	if v, ok := s.Min(); !ok || v != 0 {
		t.Errorf("Min = %d, %v", v, ok)
	}
	if v, ok := s.Max(); !ok || v != 15 {
		t.Errorf("Max = %d, %v", v, ok)
	}
	var empty Set
	if _, ok := empty.Min(); ok {
		t.Error("empty Min should report !ok")
	}
	if _, ok := empty.Max(); ok {
		t.Error("empty Max should report !ok")
	}
}

func TestSetUnion(t *testing.T) {
	t.Parallel()
	a := NewSet(MustNew(0, 5), MustNew(10, 15))
	b := NewSet(MustNew(6, 9), MustNew(20, 25))
	got := a.Union(b)
	want := NewSet(MustNew(0, 15), MustNew(20, 25))
	if !got.Equal(want) {
		t.Fatalf("Union = %v, want %v", got, want)
	}
	if !a.Union(Set{}).Equal(a) || !(Set{}).Union(a).Equal(a) {
		t.Fatal("union with empty should be identity")
	}
}

func TestSetIntersect(t *testing.T) {
	t.Parallel()
	a := NewSet(MustNew(0, 10), MustNew(20, 30))
	b := NewSet(MustNew(5, 25))
	got := a.Intersect(b)
	want := NewSet(MustNew(5, 10), MustNew(20, 25))
	if !got.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(Set{}).Empty() {
		t.Fatal("intersect with empty should be empty")
	}
}

func TestSetSubtract(t *testing.T) {
	t.Parallel()
	a := NewSet(MustNew(0, 10), MustNew(20, 30))
	b := NewSet(MustNew(5, 22), MustNew(30, 30))
	got := a.Subtract(b)
	want := NewSet(MustNew(0, 4), MustNew(23, 29))
	if !got.Equal(want) {
		t.Fatalf("Subtract = %v, want %v", got, want)
	}
	if !a.Subtract(Set{}).Equal(a) {
		t.Fatal("subtract empty should be identity")
	}
	if !a.Subtract(a).Empty() {
		t.Fatal("a - a should be empty")
	}
}

func TestSetOverlaps(t *testing.T) {
	t.Parallel()
	a := NewSet(MustNew(0, 5), MustNew(10, 15))
	if !a.Overlaps(NewSet(MustNew(5, 7))) {
		t.Error("should overlap at 5")
	}
	if a.Overlaps(NewSet(MustNew(6, 9), MustNew(16, 20))) {
		t.Error("should not overlap")
	}
	if a.Overlaps(Set{}) {
		t.Error("nothing overlaps the empty set")
	}
}

func TestSetContainsSet(t *testing.T) {
	t.Parallel()
	a := NewSet(MustNew(0, 10))
	if !a.ContainsSet(NewSet(MustNew(2, 3), MustNew(8, 10))) {
		t.Error("should contain subset")
	}
	if a.ContainsSet(NewSet(MustNew(9, 11))) {
		t.Error("should not contain overflowing set")
	}
	if !a.ContainsSet(Set{}) {
		t.Error("every set contains the empty set")
	}
}

func TestComplementWithin(t *testing.T) {
	t.Parallel()
	domain := MustNew(0, 100)
	s := NewSet(MustNew(0, 10), MustNew(50, 60))
	got := s.ComplementWithin(domain)
	want := NewSet(MustNew(11, 49), MustNew(61, 100))
	if !got.Equal(want) {
		t.Fatalf("complement = %v, want %v", got, want)
	}
	// Complement of complement is the original (within domain).
	if !got.ComplementWithin(domain).Equal(s) {
		t.Fatal("double complement should round-trip")
	}
}

func TestSetCount(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(0, 9), MustNew(100, 109))
	if got := s.Count(); got != 20 {
		t.Fatalf("Count = %d, want 20", got)
	}
	full := SetFromInterval(MustNew(0, math.MaxUint64))
	if got := full.Count(); got != math.MaxUint64 {
		t.Fatalf("full-domain Count should saturate, got %d", got)
	}
}

func TestEnumerate(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(2, 4), MustNew(7, 8))
	var got []uint64
	s.Enumerate(func(v uint64) bool {
		got = append(got, v)
		return true
	})
	want := []uint64{2, 3, 4, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(0, 100))
	count := 0
	s.Enumerate(func(v uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("enumerated %d values, want 3", count)
	}
}

func TestEnumerateAtMaxBoundary(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(math.MaxUint64-1, math.MaxUint64))
	var got []uint64
	s.Enumerate(func(v uint64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != math.MaxUint64-1 || got[1] != math.MaxUint64 {
		t.Fatalf("got %v", got)
	}
}

func TestSetEqual(t *testing.T) {
	t.Parallel()
	a := NewSet(MustNew(0, 5), MustNew(7, 9))
	b := NewSet(MustNew(0, 3), MustNew(4, 5), MustNew(7, 9))
	if !a.Equal(b) {
		t.Error("canonicalized sets with the same elements should be equal")
	}
	c := NewSet(MustNew(0, 5))
	if a.Equal(c) {
		t.Error("different sets should not be equal")
	}
}

func TestSetString(t *testing.T) {
	t.Parallel()
	s := NewSet(MustNew(0, 5), Point(9))
	if got := s.String(); got != "{[0, 5], 9}" {
		t.Fatalf("String = %q", got)
	}
}
