package interval

import (
	"math/rand"
	"testing"
)

// benchSets builds two moderately fragmented sets.
func benchSets() (Set, Set) {
	r := rand.New(rand.NewSource(1))
	mk := func() Set {
		ivs := make([]Interval, 0, 16)
		for i := 0; i < 16; i++ {
			lo := uint64(r.Intn(1 << 20))
			ivs = append(ivs, MustNew(lo, lo+uint64(r.Intn(4096))))
		}
		return NewSet(ivs...)
	}
	return mk(), mk()
}

func BenchmarkSetUnion(b *testing.B) {
	x, y := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkSetIntersect(b *testing.B) {
	x, y := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func BenchmarkSetSubtract(b *testing.B) {
	x, y := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Subtract(y)
	}
}

func BenchmarkSetContains(b *testing.B) {
	x, _ := benchSets()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Contains(uint64(i) % (1 << 20))
	}
}

func BenchmarkNewSetCanonicalize(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	ivs := make([]Interval, 64)
	for i := range ivs {
		lo := uint64(r.Intn(1 << 20))
		ivs[i] = MustNew(lo, lo+uint64(r.Intn(4096)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSet(ivs...)
	}
}
