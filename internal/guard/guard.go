// Package guard provides per-request work budgets for the analysis
// pipeline. FDD construction, shaping, and comparison are worst-case
// exponential in the number of rules (PAPER.md Sections 3-4), so a
// single pathological policy can otherwise exhaust memory or pin a
// worker for minutes. A Budget caps the four resources that blow up —
// FDD nodes materialized, shaping edge splits, approximate resident
// bytes, and wall clock — and the pipeline walks abort with a typed
// ErrBudgetExceeded the moment any cap is crossed.
//
// The charging discipline mirrors the cancellation latch the pipeline
// already uses (the cancelCheckEvery countdown in shape and compare):
// each goroutine accumulates work into a local counter and flushes it
// into the Budget's atomics every few hundred operations, so the hot
// path pays one atomic add per batch, not per node. Once any flush
// crosses a limit the budget latches its error; every other worker sees
// the latch on its next poll and unwinds, exactly like cancellation.
//
// Budgets travel through context.Context (WithBudget / FromContext) and
// survive context.WithoutCancel, so a budget set on a request flows
// into the engine's detached singleflight flights like trace spans do.
package guard

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Kind names one budgeted resource.
type Kind string

// The budgeted resource kinds. The string values are stable: they are
// surfaced in error messages, metrics labels, and trace attributes.
const (
	// KindNodes counts FDD nodes materialized: construction appends,
	// shaping subgraph replication, and comparison interning all create
	// nodes, and node count is the memory and CPU driver of the paper's
	// blowup bound.
	KindNodes Kind = "fdd_nodes"
	// KindSplits counts shaping edge splits (each split also replicates
	// a subgraph — the Section 4 complexity driver).
	KindSplits Kind = "edge_splits"
	// KindBytes is the approximate resident-byte estimate derived from
	// nodes and edges (same cost model as the engine's cache charging).
	KindBytes Kind = "bytes"
	// KindWall is wall-clock time since the budget was created.
	KindWall Kind = "wall_clock"
)

// ErrBudgetExceeded reports that a pipeline walk crossed a work budget.
// Callers match it with errors.As (it carries which resource tripped)
// or errors.Is against ErrBudget.
type ErrBudgetExceeded struct {
	Kind  Kind
	Limit int64
	Used  int64
}

// ErrBudget is the errors.Is target matching any ErrBudgetExceeded.
var ErrBudget = errors.New("work budget exceeded")

func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("work budget exceeded: %s used %d of limit %d", e.Kind, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrBudget) true for any ErrBudgetExceeded.
func (e *ErrBudgetExceeded) Is(target error) bool { return target == ErrBudget }

// Limits configures a Budget. Zero fields are unlimited.
type Limits struct {
	// MaxFDDNodes caps nodes materialized across one request's
	// construction, shaping, and comparison walks.
	MaxFDDNodes int64
	// MaxEdgeSplits caps shaping edge splits.
	MaxEdgeSplits int64
	// MaxBytes caps the approximate resident bytes of diagrams built for
	// the request.
	MaxBytes int64
	// MaxWall caps wall-clock time from NewBudget.
	MaxWall time.Duration
}

// Enabled reports whether any limit is set.
func (l Limits) Enabled() bool {
	return l.MaxFDDNodes > 0 || l.MaxEdgeSplits > 0 || l.MaxBytes > 0 || l.MaxWall > 0
}

// Budget tracks one request's work against its limits. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops returning
// nil), so pipeline code charges unconditionally — an unbudgeted walk
// pays one nil check per batch.
type Budget struct {
	limits   Limits
	start    time.Time
	deadline time.Time // zero when MaxWall is unset

	nodes  atomic.Int64
	splits atomic.Int64
	bytes  atomic.Int64

	// exceeded latches the first crossing so every walker unwinds with
	// the same error and later polls are one atomic load.
	exceeded atomic.Pointer[ErrBudgetExceeded]
}

// NewBudget starts a budget clock with the given limits.
func NewBudget(l Limits) *Budget {
	b := &Budget{limits: l, start: time.Now()}
	if l.MaxWall > 0 {
		b.deadline = b.start.Add(l.MaxWall)
	}
	return b
}

// Limits returns the configured limits.
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.limits
}

// trip latches err if no earlier crossing did, and returns the latched
// error (the winner of a race, so all walkers agree).
func (b *Budget) trip(err *ErrBudgetExceeded) *ErrBudgetExceeded {
	if b.exceeded.CompareAndSwap(nil, err) {
		return err
	}
	return b.exceeded.Load()
}

// ForceExceed trips the budget as if kind's limit were crossed, no
// matter the real usage. It is the hook fault injection uses to make
// "budget exhausted mid-pipeline" deterministic in tests.
func (b *Budget) ForceExceed(kind Kind) error {
	if b == nil {
		return nil
	}
	return b.trip(&ErrBudgetExceeded{Kind: kind, Limit: 0, Used: 0})
}

// AddNodes charges n materialized nodes (and their approximate bytes)
// and reports whether the budget is now exceeded. Callers batch: one
// call per few hundred nodes, not per node.
func (b *Budget) AddNodes(n int64) error {
	if b == nil {
		return nil
	}
	if err := b.exceeded.Load(); err != nil {
		return err
	}
	used := b.nodes.Add(n)
	if b.limits.MaxFDDNodes > 0 && used > b.limits.MaxFDDNodes {
		return b.trip(&ErrBudgetExceeded{Kind: KindNodes, Limit: b.limits.MaxFDDNodes, Used: used})
	}
	// Nodes dominate the resident-size estimate; edges are charged with
	// their node. nodeApproxBytes keeps the two caps independently
	// meaningful without a second walk.
	usedBytes := b.bytes.Add(n * nodeApproxBytes)
	if b.limits.MaxBytes > 0 && usedBytes > b.limits.MaxBytes {
		return b.trip(&ErrBudgetExceeded{Kind: KindBytes, Limit: b.limits.MaxBytes, Used: usedBytes})
	}
	return b.checkWall()
}

// nodeApproxBytes is the per-node resident estimate: one node header
// plus its average edge and label share (the engine's cache cost model
// uses the same constants).
const nodeApproxBytes = 128

// AddSplits charges n shaping edge splits.
func (b *Budget) AddSplits(n int64) error {
	if b == nil {
		return nil
	}
	if err := b.exceeded.Load(); err != nil {
		return err
	}
	used := b.splits.Add(n)
	if b.limits.MaxEdgeSplits > 0 && used > b.limits.MaxEdgeSplits {
		return b.trip(&ErrBudgetExceeded{Kind: KindSplits, Limit: b.limits.MaxEdgeSplits, Used: used})
	}
	return b.checkWall()
}

// checkWall trips the budget when the wall-clock deadline has passed.
func (b *Budget) checkWall() error {
	if b == nil {
		return nil
	}
	if err := b.exceeded.Load(); err != nil {
		return err
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return b.trip(&ErrBudgetExceeded{
			Kind:  KindWall,
			Limit: int64(b.limits.MaxWall / time.Millisecond),
			Used:  int64(time.Since(b.start) / time.Millisecond),
		})
	}
	return nil
}

// Err returns the latched ErrBudgetExceeded, or nil. It also polls the
// wall clock, so a walk that only reads Err still times out.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	if err := b.checkWall(); err != nil {
		return err
	}
	return nil
}

// Usage is a point-in-time snapshot of a budget's consumption, for
// trace attributes and stats endpoints.
type Usage struct {
	Nodes  int64 `json:"nodes"`
	Splits int64 `json:"splits"`
	Bytes  int64 `json:"bytes"`
	// WallMillis is elapsed wall clock since the budget started.
	WallMillis int64 `json:"wallMillis"`
	// Exceeded names the resource that tripped, empty if none did.
	Exceeded Kind `json:"exceeded,omitempty"`
}

// Usage returns the current consumption snapshot.
func (b *Budget) Usage() Usage {
	if b == nil {
		return Usage{}
	}
	u := Usage{
		Nodes:      b.nodes.Load(),
		Splits:     b.splits.Load(),
		Bytes:      b.bytes.Load(),
		WallMillis: int64(time.Since(b.start) / time.Millisecond),
	}
	if err := b.exceeded.Load(); err != nil {
		u.Exceeded = err.Kind
	}
	return u
}

// ctxKey carries the active *Budget through a context chain. Like trace
// spans, budgets are context values, so they survive
// context.WithoutCancel into detached singleflight flights.
type ctxKey struct{}

// WithBudget returns a context carrying b.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	return context.WithValue(ctx, ctxKey{}, b)
}

// FromContext returns the context's budget, or nil (all Budget methods
// are nil-safe, so callers charge unconditionally).
func FromContext(ctx context.Context) *Budget {
	b, _ := ctx.Value(ctxKey{}).(*Budget)
	return b
}
