package guard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilBudgetIsNoOp(t *testing.T) {
	var b *Budget
	if err := b.AddNodes(1 << 40); err != nil {
		t.Fatalf("nil AddNodes: %v", err)
	}
	if err := b.AddSplits(1 << 40); err != nil {
		t.Fatalf("nil AddSplits: %v", err)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
	if err := b.ForceExceed(KindNodes); err != nil {
		t.Fatalf("nil ForceExceed: %v", err)
	}
	if got := b.Usage(); got != (Usage{}) {
		t.Fatalf("nil Usage = %+v", got)
	}
	if got := b.Limits(); got != (Limits{}) {
		t.Fatalf("nil Limits = %+v", got)
	}
}

func TestNodeLimitTrips(t *testing.T) {
	b := NewBudget(Limits{MaxFDDNodes: 100})
	if err := b.AddNodes(100); err != nil {
		t.Fatalf("at limit should not trip: %v", err)
	}
	err := b.AddNodes(1)
	if err == nil {
		t.Fatal("over limit should trip")
	}
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("want ErrBudgetExceeded, got %T", err)
	}
	if be.Kind != KindNodes || be.Limit != 100 || be.Used != 101 {
		t.Fatalf("unexpected error detail: %+v", be)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatal("errors.Is(err, ErrBudget) should hold")
	}
	// Latched: later charges and Err() return the same crossing.
	if err2 := b.AddSplits(1); err2 == nil || !errors.Is(err2, ErrBudget) {
		t.Fatalf("latched budget should fail later charges, got %v", err2)
	}
	if err2 := b.Err(); !errors.Is(err2, ErrBudget) {
		t.Fatalf("Err() after trip = %v", err2)
	}
	if u := b.Usage(); u.Exceeded != KindNodes {
		t.Fatalf("Usage().Exceeded = %q, want %q", u.Exceeded, KindNodes)
	}
}

func TestSplitLimitTrips(t *testing.T) {
	b := NewBudget(Limits{MaxEdgeSplits: 10})
	if err := b.AddSplits(11); err == nil {
		t.Fatal("want split trip")
	}
	var be *ErrBudgetExceeded
	if !errors.As(b.Err(), &be) || be.Kind != KindSplits {
		t.Fatalf("want KindSplits, got %v", b.Err())
	}
}

func TestByteLimitDerivedFromNodes(t *testing.T) {
	b := NewBudget(Limits{MaxBytes: 10 * nodeApproxBytes})
	if err := b.AddNodes(10); err != nil {
		t.Fatalf("at byte limit: %v", err)
	}
	err := b.AddNodes(1)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Kind != KindBytes {
		t.Fatalf("want KindBytes trip, got %v", err)
	}
}

func TestWallClockTrips(t *testing.T) {
	b := NewBudget(Limits{MaxWall: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := b.Err()
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Kind != KindWall {
		t.Fatalf("want KindWall trip, got %v", err)
	}
}

func TestForceExceed(t *testing.T) {
	b := NewBudget(Limits{MaxFDDNodes: 1 << 30})
	if err := b.ForceExceed(KindNodes); !errors.Is(err, ErrBudget) {
		t.Fatalf("ForceExceed = %v", err)
	}
	if err := b.AddNodes(1); !errors.Is(err, ErrBudget) {
		t.Fatalf("charge after ForceExceed = %v", err)
	}
}

func TestUnlimitedBudgetNeverTrips(t *testing.T) {
	b := NewBudget(Limits{})
	if err := b.AddNodes(1 << 40); err != nil {
		t.Fatalf("unlimited AddNodes: %v", err)
	}
	if err := b.AddSplits(1 << 40); err != nil {
		t.Fatalf("unlimited AddSplits: %v", err)
	}
}

func TestConcurrentChargersAgreeOnError(t *testing.T) {
	b := NewBudget(Limits{MaxFDDNodes: 1000})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if err := b.AddNodes(10); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	first := b.exceeded.Load()
	if first == nil {
		t.Fatal("budget should have tripped")
	}
	for i, err := range errs {
		var be *ErrBudgetExceeded
		if !errors.As(err, &be) {
			t.Fatalf("worker %d: %v", i, err)
		}
		if be != first {
			t.Fatalf("worker %d saw %+v, want the latched %+v", i, be, first)
		}
	}
}

func TestContextRoundTripSurvivesWithoutCancel(t *testing.T) {
	b := NewBudget(Limits{MaxFDDNodes: 1})
	ctx := WithBudget(context.Background(), b)
	if got := FromContext(ctx); got != b {
		t.Fatalf("FromContext = %p, want %p", got, b)
	}
	detached := context.WithoutCancel(ctx)
	if got := FromContext(detached); got != b {
		t.Fatal("budget should survive WithoutCancel")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context FromContext = %p, want nil", got)
	}
}

func TestUsageSnapshot(t *testing.T) {
	b := NewBudget(Limits{})
	b.AddNodes(7)
	b.AddSplits(3)
	u := b.Usage()
	if u.Nodes != 7 || u.Splits != 3 || u.Bytes != 7*nodeApproxBytes {
		t.Fatalf("Usage = %+v", u)
	}
	if u.Exceeded != "" {
		t.Fatalf("Exceeded = %q, want empty", u.Exceeded)
	}
}
