// Package calibrate measures the host's CPU speed with a fixed
// reference workload, so performance snapshots taken on different days
// (or different noisy-neighbor weather) can be compared as code speed
// rather than machine speed. fwbench stamps the number into every
// BENCH_*.json and rescales gate limits by the ratio of two
// calibrations; fwscen stamps it into scenario provenance for the same
// reason.
package calibrate

import "testing"

// NsPerOp runs the reference workload — 1<<24 xorshift64 steps, no
// allocation, no memory traffic beyond registers, pure CPU — under
// testing.Benchmark and returns its ns/op. Code changes in this repo
// cannot affect the number; only the machine can. Expect a full run to
// take on the order of a second (testing.Benchmark targets 1s of
// iterations).
func NsPerOp() int64 {
	r := testing.Benchmark(func(b *testing.B) {
		var sum uint64
		for i := 0; i < b.N; i++ {
			x := uint64(88172645463325252)
			for j := 0; j < 1<<24; j++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				sum += x
			}
		}
		sink = sum
	})
	return r.NsPerOp()
}

// sink defeats dead-code elimination of the calibration loop.
var sink uint64

// Ratio returns current/baseline as a rescale factor for
// baseline-relative limits, or 1 when either side is missing (<= 0) —
// uncalibrated comparisons fall back to absolute numbers.
func Ratio(current, baseline int64) float64 {
	if current <= 0 || baseline <= 0 {
		return 1
	}
	return float64(current) / float64(baseline)
}
