package calibrate

import "testing"

func TestRatio(t *testing.T) {
	cases := []struct {
		cur, base int64
		want      float64
	}{
		{100, 100, 1},
		{200, 100, 2},
		{50, 100, 0.5},
		{0, 100, 1},
		{100, 0, 1},
		{-5, 100, 1},
	}
	for _, c := range cases {
		if got := Ratio(c.cur, c.base); got != c.want {
			t.Errorf("Ratio(%d, %d) = %g, want %g", c.cur, c.base, got, c.want)
		}
	}
}

// TestNsPerOp only sanity-checks the sign: the workload is fixed, so
// any functioning machine yields a positive ns/op. Runs the full 1s
// benchmark loop, so keep it out of tight inner loops.
func TestNsPerOp(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration takes ~1s")
	}
	if got := NsPerOp(); got <= 0 {
		t.Fatalf("NsPerOp = %d, want > 0", got)
	}
}
