package synth

import (
	"testing"

	"diversefw/internal/fdd"
	"diversefw/internal/rule"
)

func TestSyntheticBasics(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{Rules: 100, Seed: 1})
	if p.Size() != 100 {
		t.Fatalf("size = %d", p.Size())
	}
	if !p.EndsWithCatchAll() {
		t.Fatal("must end with a catch-all")
	}
	if p.Schema.NumFields() != 5 {
		t.Fatal("five-tuple schema expected")
	}
	// Comprehensive by construction: FDD construction must succeed.
	if _, err := fdd.Construct(p); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	t.Parallel()
	a := Synthetic(Config{Rules: 50, Seed: 7})
	b := Synthetic(Config{Rules: 50, Seed: 7})
	if rule.FormatPolicy(a) != rule.FormatPolicy(b) {
		t.Fatal("same seed should generate the same policy")
	}
	c := Synthetic(Config{Rules: 50, Seed: 8})
	if rule.FormatPolicy(a) == rule.FormatPolicy(c) {
		t.Fatal("different seeds should differ")
	}
}

func TestSyntheticDefaults(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{})
	if p.Size() != 50 {
		t.Fatalf("default size = %d", p.Size())
	}
}

func TestSyntheticValueReuse(t *testing.T) {
	t.Parallel()
	// With a pool of 12 source blocks, a 200-rule policy must reuse
	// source values heavily (the real-life property that keeps FDDs
	// small).
	p := Synthetic(Config{Rules: 200, Seed: 3, SrcPool: 12, DstPool: 12})
	distinct := make(map[string]bool)
	for _, r := range p.Rules {
		distinct[r.Pred[0].String()] = true
	}
	if len(distinct) > 13 { // 12 pool blocks + wildcard
		t.Fatalf("%d distinct source sets, want <= 13", len(distinct))
	}
}

func TestRealLifeSizes(t *testing.T) {
	t.Parallel()
	// The paper's two real-life subjects.
	for _, size := range []int{42, 661} {
		p := RealLife(size, 9)
		if p.Size() != size {
			t.Fatalf("size = %d, want %d", p.Size(), size)
		}
		if _, err := fdd.Construct(p); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestPerturbStats(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{Rules: 100, Seed: 5})
	q, stats := Perturb(p, 20, 11)
	if stats.Selected != 20 {
		t.Fatalf("selected = %d, want 20 (20%% of 99 rounds to 20)", stats.Selected)
	}
	if stats.Flipped+stats.Deleted != stats.Selected {
		t.Fatalf("flipped %d + deleted %d != selected %d", stats.Flipped, stats.Deleted, stats.Selected)
	}
	if q.Size() != p.Size()-stats.Deleted {
		t.Fatalf("output size %d, want %d", q.Size(), p.Size()-stats.Deleted)
	}
	if !q.EndsWithCatchAll() {
		t.Fatal("perturbation must preserve the catch-all")
	}
	if _, err := fdd.Construct(q); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbZeroAndFull(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{Rules: 40, Seed: 6})
	q, stats := Perturb(p, 0, 1)
	if stats.Selected != 0 || q.Size() != p.Size() {
		t.Fatalf("x=0 should be a no-op, got %+v", stats)
	}
	q, stats = Perturb(p, 100, 1)
	if stats.Selected != p.Size()-1 {
		t.Fatalf("x=100 should select all but the catch-all, got %d", stats.Selected)
	}
	if !q.EndsWithCatchAll() {
		t.Fatal("catch-all must survive x=100")
	}
}

func TestPerturbSharesUnselectedRules(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{Rules: 60, Seed: 2})
	q, stats := Perturb(p, 10, 3)
	// The two versions share (100-x)% of rules; count exact matches.
	same := 0
	qset := make(map[string]bool, q.Size())
	for _, r := range q.Rules {
		qset[rule.FormatRule(q.Schema, r)] = true
	}
	for _, r := range p.Rules {
		if qset[rule.FormatRule(p.Schema, r)] {
			same++
		}
	}
	if same < p.Size()-stats.Selected {
		t.Fatalf("only %d shared rules, want >= %d", same, p.Size()-stats.Selected)
	}
}

func TestFlip(t *testing.T) {
	t.Parallel()
	cases := map[rule.Decision]rule.Decision{
		rule.Accept:     rule.Discard,
		rule.Discard:    rule.Accept,
		rule.AcceptLog:  rule.DiscardLog,
		rule.DiscardLog: rule.AcceptLog,
	}
	for in, want := range cases {
		if got := flip(in); got != want {
			t.Errorf("flip(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestInjectErrors(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{Rules: 87, Seed: 4}) // the Section 8.1 size
	faulty, log := InjectErrors(p, ErrorConfig{OrderingErrors: 10, MissingRules: 3, Seed: 12})
	if len(log.MovedToFront) != 10 {
		t.Fatalf("moved %d rules, want 10", len(log.MovedToFront))
	}
	if len(log.Deleted) != 3 {
		t.Fatalf("deleted %d rules, want 3", len(log.Deleted))
	}
	if faulty.Size() != p.Size()-3 {
		t.Fatalf("size = %d, want %d", faulty.Size(), p.Size()-3)
	}
	if !faulty.EndsWithCatchAll() {
		t.Fatal("catch-all must survive error injection")
	}
	if _, err := fdd.Construct(faulty); err != nil {
		t.Fatal(err)
	}
	// The reference is untouched.
	if p.Size() != 87 {
		t.Fatal("InjectErrors mutated its input")
	}
}

func TestInjectErrorsDeterministic(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{Rules: 50, Seed: 4})
	a, _ := InjectErrors(p, ErrorConfig{OrderingErrors: 5, MissingRules: 2, Seed: 9})
	b, _ := InjectErrors(p, ErrorConfig{OrderingErrors: 5, MissingRules: 2, Seed: 9})
	if rule.FormatPolicy(a) != rule.FormatPolicy(b) {
		t.Fatal("same seed should inject the same errors")
	}
}
