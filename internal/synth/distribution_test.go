package synth

import (
	"testing"

	"diversefw/internal/interval"
	"diversefw/internal/rule"
)

// TestDistributionShape checks the generator against the real-life
// characteristics it claims (Gupta's measurements, Section 8.2.2):
// protocol mix dominated by TCP, destination ports mostly well-known
// services, source ports mostly wildcards. Tolerances are generous; the
// point is the shape, not the third decimal.
func TestDistributionShape(t *testing.T) {
	t.Parallel()
	p := Synthetic(Config{Rules: 4000, Seed: 77})
	s := p.Schema
	n := float64(p.Size() - 1) // exclude the catch-all

	var tcp, udp, protoWild float64
	var sportWild float64
	var dportKnown, dportWild float64
	known := map[uint64]bool{}
	for _, port := range wellKnownPorts {
		known[port] = true
	}

	for _, r := range p.Rules[:p.Size()-1] {
		switch {
		case r.Pred[4].Equal(interval.SetOf(6, 6)):
			tcp++
		case r.Pred[4].Equal(interval.SetOf(17, 17)):
			udp++
		case r.Pred[4].Equal(s.FullSet(4)):
			protoWild++
		}
		if r.Pred[2].Equal(s.FullSet(2)) {
			sportWild++
		}
		if r.Pred[3].Equal(s.FullSet(3)) {
			dportWild++
		} else if lo, ok := r.Pred[3].Min(); ok {
			if hi, _ := r.Pred[3].Max(); lo == hi && known[lo] {
				dportKnown++
			}
		}
	}

	checks := []struct {
		name     string
		fraction float64
		lo, hi   float64
	}{
		{"tcp", tcp / n, 0.50, 0.70},
		{"udp", udp / n, 0.12, 0.28},
		{"proto wildcard", protoWild / n, 0.08, 0.22},
		{"sport wildcard", sportWild / n, 0.84, 0.96},
		{"dport well-known", dportKnown / n, 0.50, 0.70},
		{"dport wildcard", dportWild / n, 0.10, 0.26},
	}
	for _, c := range checks {
		if c.fraction < c.lo || c.fraction > c.hi {
			t.Errorf("%s fraction = %.3f, want in [%.2f, %.2f]", c.name, c.fraction, c.lo, c.hi)
		}
	}
}

// TestSharedUniverseAcrossSeeds: two policies for the same network (same
// PoolSeed, different Seed) must reference the same address blocks — the
// property that keeps cross-version FDDs small.
func TestSharedUniverseAcrossSeeds(t *testing.T) {
	t.Parallel()
	a := Synthetic(Config{Rules: 300, Seed: 1})
	b := Synthetic(Config{Rules: 300, Seed: 2})
	distinct := func(p *rule.Policy, fi int) map[string]bool {
		out := map[string]bool{}
		for _, r := range p.Rules {
			out[r.Pred[fi].String()] = true
		}
		return out
	}
	srcA, srcB := distinct(a, 0), distinct(b, 0)
	shared := 0
	for k := range srcA {
		if srcB[k] {
			shared++
		}
	}
	// Nearly every block in one policy should appear in the other.
	if shared < len(srcA)-2 {
		t.Fatalf("only %d of %d source sets shared across seeds", shared, len(srcA))
	}

	// A different PoolSeed gives a different universe.
	c := Synthetic(Config{Rules: 300, Seed: 1, PoolSeed: 99})
	srcC := distinct(c, 0)
	overlap := 0
	for k := range srcA {
		if srcC[k] {
			overlap++
		}
	}
	if overlap > 3 { // the wildcard and coincidences only
		t.Fatalf("different pool seeds share %d source sets", overlap)
	}
}
