// Package synth generates synthetic firewall policies and the paper's two
// experiment workloads.
//
// Real firewall configurations are confidential (Section 8.2.2), so the
// paper generates synthetic policies "based on the characteristics of
// real-life firewalls" reported in Gupta's measurement study [13]:
// five-tuple rules whose IP fields are CIDR prefixes drawn from a limited
// pool of subnets (real rules keep referring to the same servers and
// networks), destination ports drawn mostly from well-known services,
// protocols mostly TCP/UDP, and a trailing catch-all. This package
// implements that generator plus:
//
//   - Perturb: the Section 8.2.1 protocol for deriving a "second team's
//     version" from a policy (select x% of rules, flip the decisions of a
//     random y% of the selection, delete the rest), used by the Fig. 12
//     experiment;
//   - InjectErrors: the Section 8.1 effectiveness workload (ordering
//     errors — rules wrongly moved to the front — plus missing rules).
package synth

import (
	"math/rand"

	"diversefw/internal/field"
	"diversefw/internal/interval"
	"diversefw/internal/rule"
)

// Config controls the synthetic generator. Zero values select defaults.
type Config struct {
	// Rules is the total rule count including the final catch-all.
	Rules int
	// Seed makes generation deterministic.
	Seed int64
	// SrcPool and DstPool bound how many distinct address blocks the
	// policy refers to (small pools mimic real configurations and keep
	// FDDs compact; Gupta observed heavy value reuse). Defaults: 24, 24.
	SrcPool, DstPool int
	// PoolSeed seeds the address-block universe. Policies that model
	// different teams (or different revisions) protecting the same network
	// must share a PoolSeed while varying Seed: the blocks a firewall
	// refers to are facts about the network, not choices of the designer.
	// Zero selects the default shared universe.
	PoolSeed int64
	// DiscardFraction is the share of non-catch-all rules that discard.
	// Default: 0.55.
	DiscardFraction float64
}

func (c Config) withDefaults() Config {
	if c.Rules <= 0 {
		c.Rules = 50
	}
	if c.SrcPool <= 0 {
		c.SrcPool = 24
	}
	if c.DstPool <= 0 {
		c.DstPool = 24
	}
	if c.PoolSeed == 0 {
		c.PoolSeed = 42
	}
	if c.DiscardFraction <= 0 {
		c.DiscardFraction = 0.55
	}
	return c
}

// wellKnownPorts are the services that dominate real-life destination
// ports in [13].
var wellKnownPorts = []uint64{20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 389, 443, 445, 993, 995, 1433, 3306, 3389, 8080}

// Synthetic generates a comprehensive five-tuple policy of cfg.Rules rules
// (the last being a catch-all) with the distributions described above.
func Synthetic(cfg Config) *rule.Policy {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	schema := field.IPv4FiveTuple()

	srcPool := makeAddrPool(rand.New(rand.NewSource(cfg.PoolSeed)), cfg.SrcPool)
	dstPool := makeAddrPool(rand.New(rand.NewSource(cfg.PoolSeed+1)), cfg.DstPool)

	rules := make([]rule.Rule, 0, cfg.Rules)
	for i := 0; i < cfg.Rules-1; i++ {
		pred := rule.Predicate{
			drawAddr(r, schema, 0, srcPool),
			drawAddr(r, schema, 1, dstPool),
			drawSrcPort(r, schema),
			drawDstPort(r, schema),
			drawProto(r, schema),
		}
		d := rule.Accept
		if r.Float64() < cfg.DiscardFraction {
			d = rule.Discard
		}
		rules = append(rules, rule.Rule{Pred: pred, Decision: d})
	}
	// Real policies end in a default rule; default-deny dominates.
	last := rule.Discard
	if r.Float64() < 0.2 {
		last = rule.Accept
	}
	rules = append(rules, rule.CatchAll(schema, last))
	p, err := rule.NewPolicy(schema, rules)
	if err != nil {
		// The generator only emits in-domain sets; failure is a bug.
		panic(err)
	}
	return p
}

// makeAddrPool builds n address blocks with the prefix-length mix of
// real-life rules: /16 and /24 subnets dominate, with some /8s and host
// addresses.
func makeAddrPool(r *rand.Rand, n int) []interval.Interval {
	pool := make([]interval.Interval, n)
	for i := range pool {
		var length int
		switch p := r.Float64(); {
		case p < 0.10:
			length = 8
		case p < 0.40:
			length = 16
		case p < 0.80:
			length = 24
		default:
			length = 32
		}
		base := uint64(r.Uint32()) &^ (1<<uint(32-length) - 1)
		pool[i] = interval.MustNew(base, base|(1<<uint(32-length)-1))
	}
	return pool
}

// drawAddr picks the field's value set: wildcard 25% of the time, else a
// pool block.
func drawAddr(r *rand.Rand, schema *field.Schema, fi int, pool []interval.Interval) interval.Set {
	if r.Float64() < 0.25 {
		return schema.FullSet(fi)
	}
	return interval.SetFromInterval(pool[r.Intn(len(pool))])
}

// drawSrcPort is nearly always a wildcard in real rules; occasionally the
// ephemeral range.
func drawSrcPort(r *rand.Rand, schema *field.Schema) interval.Set {
	switch p := r.Float64(); {
	case p < 0.90:
		return schema.FullSet(2)
	case p < 0.97:
		return interval.SetOf(1024, 65535)
	default:
		return interval.SetFromInterval(interval.Point(wellKnownPorts[r.Intn(len(wellKnownPorts))]))
	}
}

// drawDstPort is mostly a well-known service, sometimes a range or
// wildcard.
func drawDstPort(r *rand.Rand, schema *field.Schema) interval.Set {
	switch p := r.Float64(); {
	case p < 0.60:
		return interval.SetFromInterval(interval.Point(wellKnownPorts[r.Intn(len(wellKnownPorts))]))
	case p < 0.75:
		return interval.SetOf(1024, 65535)
	case p < 0.82:
		return interval.SetOf(0, 1023)
	default:
		return schema.FullSet(3)
	}
}

// drawProto follows the paper's observation: TCP dominates, then UDP,
// wildcard, ICMP.
func drawProto(r *rand.Rand, schema *field.Schema) interval.Set {
	switch p := r.Float64(); {
	case p < 0.60:
		return interval.SetFromInterval(interval.Point(6)) // tcp
	case p < 0.80:
		return interval.SetFromInterval(interval.Point(17)) // udp
	case p < 0.95:
		return schema.FullSet(4)
	default:
		return interval.SetFromInterval(interval.Point(1)) // icmp
	}
}

// Adversarial generates a worst-case blowup policy: n-1 "staircase"
// rules plus a catch-all, engineered to maximize the subgraph copying of
// the paper's append construction (Section 3). Every rule constrains
// every field to a staircase interval [i*step, i*step+span] with span
// much larger than step, so rule i's interval partially overlaps the
// intervals of many earlier rules in every field at once. Each partial
// overlap forces an edge split, and each split copies the entire
// subgraph hanging below the edge — at every level of the diagram — so
// the work of one append multiplies across fields: this is the
// exponential regime the work budgets (internal/guard) exist to stop.
// Decisions alternate, so no rule is redundant and every shell of the
// staircase keeps its own decision region.
//
// The output is deterministic in n alone: regression tests pin the node
// counts at which budgets trip.
func Adversarial(n int) *rule.Policy {
	if n < 2 {
		n = 2
	}
	schema := field.IPv4FiveTuple()
	d := schema.NumFields()
	rules := make([]rule.Rule, 0, n)
	for i := 0; i < n-1; i++ {
		pred := make(rule.Predicate, d)
		for f := 0; f < d; f++ {
			dom := schema.Domain(f)
			size := dom.Hi - dom.Lo + 1
			// ~2n steps across the domain, each interval spanning half
			// of it: every pair of rules within n/1 steps overlaps
			// partially in every field.
			step := size / uint64(2*n)
			if step == 0 {
				step = 1
			}
			span := size / 2
			lo := dom.Lo + uint64(i)*step
			if lo > dom.Hi {
				lo = dom.Hi
			}
			hi := lo + span
			if hi > dom.Hi {
				hi = dom.Hi
			}
			pred[f] = interval.SetFromInterval(interval.MustNew(lo, hi))
		}
		dec := rule.Accept
		if i%2 == 1 {
			dec = rule.Discard
		}
		rules = append(rules, rule.Rule{Pred: pred, Decision: dec})
	}
	rules = append(rules, rule.CatchAll(schema, rule.Discard))
	p, err := rule.NewPolicy(schema, rules)
	if err != nil {
		panic(err) // staircase intervals are always in-domain
	}
	return p
}

// RealLife generates a policy shaped like the paper's two real-life
// subjects (661 and 42 rules): a tighter pool of subnets (one
// organization's networks) and a default-deny tail.
func RealLife(size int, seed int64) *rule.Policy {
	return Synthetic(Config{
		Rules:           size,
		Seed:            seed,
		SrcPool:         12,
		DstPool:         12,
		DiscardFraction: 0.5,
	})
}

// PerturbStats records what a perturbation did.
type PerturbStats struct {
	// Selected is |S|: the x% of rules drawn in step one.
	Selected int
	// YPercent is the random y drawn in step two.
	YPercent int
	// Flipped rules had their decisions inverted; Deleted were removed.
	Flipped, Deleted int
}

// Perturb implements the Section 8.2.1 protocol: select xPercent of the
// policy's rules at random (set S), draw y uniformly from [0, 100], flip
// the decisions of y% of S, and delete the remaining (100-y)% of S. The
// result is the "second version" compared against the original in the
// Fig. 12 experiment. The final catch-all rule is never selected, keeping
// the result comprehensive (deleting it would make the policy reject the
// comparison pipeline, which real administrators also never do).
func Perturb(p *rule.Policy, xPercent float64, seed int64) (*rule.Policy, PerturbStats) {
	r := rand.New(rand.NewSource(seed))
	n := p.Size()
	selectable := n - 1 // spare the trailing catch-all
	k := int(float64(selectable)*xPercent/100 + 0.5)
	if k > selectable {
		k = selectable
	}
	perm := r.Perm(selectable)[:k]
	selected := make(map[int]bool, k)
	for _, i := range perm {
		selected[i] = true
	}

	y := r.Intn(101)
	stats := PerturbStats{Selected: k, YPercent: y}
	flipQuota := int(float64(k)*float64(y)/100 + 0.5)

	out := make([]rule.Rule, 0, n)
	flipped := 0
	for i, rl := range p.Rules {
		if !selected[i] {
			out = append(out, rl)
			continue
		}
		if flipped < flipQuota {
			flipped++
			out = append(out, rule.Rule{Pred: rl.Pred.Clone(), Decision: flip(rl.Decision)})
			continue
		}
		// Deleted: skip.
	}
	stats.Flipped = flipped
	stats.Deleted = k - flipped
	q, err := rule.NewPolicy(p.Schema, out)
	if err != nil {
		panic(err) // only valid rules are reused
	}
	return q, stats
}

// flip inverts a decision, preserving the logging variant.
func flip(d rule.Decision) rule.Decision {
	switch d {
	case rule.Accept:
		return rule.Discard
	case rule.Discard:
		return rule.Accept
	case rule.AcceptLog:
		return rule.DiscardLog
	case rule.DiscardLog:
		return rule.AcceptLog
	default:
		return d
	}
}

// ErrorConfig seeds the Section 8.1 effectiveness workload.
type ErrorConfig struct {
	// OrderingErrors is the number of rules wrongly moved to the front of
	// the policy — the paper found 72 of 82 original-firewall errors were
	// ordering mistakes of this shape.
	OrderingErrors int
	// MissingRules is the number of rules deleted outright (the paper's
	// remaining 10 errors).
	MissingRules int
	Seed         int64
}

// ErrorLog records which errors were injected.
type ErrorLog struct {
	// MovedToFront lists original indices of rules moved to the front, in
	// injection order.
	MovedToFront []int
	// Deleted lists original indices of removed rules.
	Deleted []int
}

// InjectErrors derives a faulty variant of the reference policy: ordering
// errors first (random non-catch-all rules moved to the front), then
// missing-rule errors (random non-catch-all rules deleted). Comparing the
// faulty policy against the reference with the discrepancy pipeline is the
// redesign experiment of Section 8.1.
func InjectErrors(p *rule.Policy, cfg ErrorConfig) (*rule.Policy, ErrorLog) {
	r := rand.New(rand.NewSource(cfg.Seed))
	cur := p.Clone()
	var log ErrorLog

	// Track original indices as rules move.
	orig := make([]int, cur.Size())
	for i := range orig {
		orig[i] = i
	}

	for k := 0; k < cfg.OrderingErrors && cur.Size() > 2; k++ {
		i := 1 + r.Intn(cur.Size()-2) // not the first (already front), not the catch-all
		moved := cur.Rules[i]
		movedOrig := orig[i]
		next, err := cur.DeleteRule(i)
		if err != nil {
			break
		}
		cur, err = next.InsertRule(0, moved)
		if err != nil {
			break
		}
		orig = append(orig[:i], orig[i+1:]...)
		orig = append([]int{movedOrig}, orig...)
		log.MovedToFront = append(log.MovedToFront, movedOrig)
	}

	for k := 0; k < cfg.MissingRules && cur.Size() > 2; k++ {
		i := r.Intn(cur.Size() - 1) // spare the catch-all
		next, err := cur.DeleteRule(i)
		if err != nil {
			break
		}
		log.Deleted = append(log.Deleted, orig[i])
		orig = append(orig[:i], orig[i+1:]...)
		cur = next
	}
	return cur, log
}
