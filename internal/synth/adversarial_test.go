package synth

import (
	"context"
	"errors"
	"testing"

	"diversefw/internal/fdd"
	"diversefw/internal/guard"
	"diversefw/internal/rule"
)

// Measured construction work for Adversarial(n), in budget-charged FDD
// nodes (deterministic — the generator takes no seed):
//
//	n=8  -> ~5.3e3    n=16 -> ~1.0e5    n=24 -> ~5.7e5    n=32 -> ~2.0e6
//
// The growth is the paper's Section 3 blowup regime: each added rule
// multiplies the subgraph copying across all five fields. These tests
// pin that behavior so a generator change that accidentally tames (or
// explodes) the workload fails loudly.

func TestAdversarialIsDeterministic(t *testing.T) {
	t.Parallel()
	a, b := Adversarial(8), Adversarial(8)
	if rule.FormatPolicy(a) != rule.FormatPolicy(b) {
		t.Fatal("Adversarial must be deterministic in n")
	}
	if a.Size() != 8 {
		t.Fatalf("Size = %d, want 8", a.Size())
	}
}

func TestAdversarialCompletesUnderGenerousBudget(t *testing.T) {
	t.Parallel()
	b := guard.NewBudget(guard.Limits{MaxFDDNodes: 1 << 20})
	ctx := guard.WithBudget(context.Background(), b)
	f, err := fdd.ConstructContext(ctx, Adversarial(8))
	if err != nil {
		t.Fatalf("n=8 should fit in 1M nodes: %v", err)
	}
	if f == nil {
		t.Fatal("nil FDD")
	}
	// Pin the measured work band: ~5.3k charged nodes at n=8. A factor-4
	// drift either way means the generator stopped producing (or wildly
	// overshoots) its documented workload.
	if u := b.Usage(); u.Nodes < 1_300 || u.Nodes > 22_000 {
		t.Fatalf("n=8 charged %d nodes, expected the ~5.3e3 band", u.Nodes)
	}
}

func TestAdversarialWorkGrowsSuperlinearly(t *testing.T) {
	t.Parallel()
	charged := func(n int) int64 {
		b := guard.NewBudget(guard.Limits{})
		ctx := guard.WithBudget(context.Background(), b)
		if _, err := fdd.ConstructContext(ctx, Adversarial(n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		return b.Usage().Nodes
	}
	c8, c12 := charged(8), charged(12)
	// Doubling 8->12 rules must multiply work by far more than the rule
	// ratio (measured: ~5.3e3 -> ~3.0e4, a 5.5x jump for 1.5x rules).
	if c12 < 3*c8 {
		t.Fatalf("work should blow up: n=8 charged %d, n=12 charged %d", c8, c12)
	}
}

// TestAdversarialTripsBudgetDeterministically is the regression fixture
// for the budget mechanism itself: a 16-rule staircase needs ~1e5 nodes,
// so a 50k budget must always trip mid-construction with the typed
// error, and the charge accounting must stop near the limit (bounded
// overshoot — the batched charging may run over by the in-flight
// batches, not by the rest of the construction).
func TestAdversarialTripsBudgetDeterministically(t *testing.T) {
	t.Parallel()
	const limit = 50_000
	b := guard.NewBudget(guard.Limits{MaxFDDNodes: limit})
	ctx := guard.WithBudget(context.Background(), b)
	f, err := fdd.ConstructContext(ctx, Adversarial(16))
	if f != nil {
		t.Fatal("aborted construction must not return a diagram")
	}
	if !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("err = %v, want budget error", err)
	}
	var be *guard.ErrBudgetExceeded
	if !errors.As(err, &be) || be.Kind != guard.KindNodes {
		t.Fatalf("want fdd_nodes trip, got %v", err)
	}
	u := b.Usage()
	if u.Nodes <= limit {
		t.Fatalf("charged %d, expected past the %d limit", u.Nodes, limit)
	}
	if u.Nodes > 2*limit {
		t.Fatalf("charged %d nodes against a %d limit: abort is not prompt", u.Nodes, limit)
	}
}
