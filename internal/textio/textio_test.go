package textio

import (
	"strings"
	"testing"

	"diversefw/internal/compare"
	"diversefw/internal/impact"
	"diversefw/internal/paper"
	"diversefw/internal/rule"
)

func paperReport(t *testing.T) *compare.Report {
	t.Helper()
	r, err := compare.Diff(paper.TeamA(), paper.TeamB())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestWriteDiscrepancyTable(t *testing.T) {
	t.Parallel()
	report := paperReport(t)
	var sb strings.Builder
	if err := WriteDiscrepancyTable(&sb, paper.Schema(), report.Discrepancies, "Team A", "Team B"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Header with field names and team columns.
	for _, want := range []string{"I", "S", "D", "N", "P", "Team A", "Team B"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The malicious domain renders as a CIDR block, the mail server as a
	// bare address (Section 7.1's readability requirement).
	if !strings.Contains(out, "224.168.0.0/16") {
		t.Errorf("malicious domain not in prefix notation:\n%s", out)
	}
	if !strings.Contains(out, "192.168.0.1") {
		t.Errorf("mail server address missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 5 { // header + separator + 3 rows
		t.Errorf("expected 3 data rows:\n%s", out)
	}
}

func TestWriteDiscrepancyTableEmpty(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := WriteDiscrepancyTable(&sb, paper.Schema(), nil, "A", "B"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "equivalent") {
		t.Fatalf("empty table should say equivalent: %q", sb.String())
	}
}

func TestWriteResolutionTable(t *testing.T) {
	t.Parallel()
	report := paperReport(t)
	resolved := []rule.Decision{rule.Discard, rule.Accept, rule.Discard}
	var sb strings.Builder
	if err := WriteResolutionTable(&sb, paper.Schema(), report.Discrepancies, resolved); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "resolved") {
		t.Errorf("missing resolved column:\n%s", out)
	}
	if strings.Contains(out, "?") {
		t.Errorf("all rows resolved, no ? expected:\n%s", out)
	}
	// Unresolved rows render as ?.
	sb.Reset()
	if err := WriteResolutionTable(&sb, paper.Schema(), report.Discrepancies, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "?") {
		t.Errorf("unresolved rows should render ?:\n%s", sb.String())
	}
}

func TestWritePolicyTable(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	if err := WritePolicyTable(&sb, paper.TeamA()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "r1") || !strings.Contains(out, "r3") {
		t.Errorf("rule labels missing:\n%s", out)
	}
	if !strings.Contains(out, "accept") || !strings.Contains(out, "discard") {
		t.Errorf("decisions missing:\n%s", out)
	}
	// Full-domain fields render as *.
	if !strings.Contains(out, "*") {
		t.Errorf("wildcards missing:\n%s", out)
	}
}

func TestWriteImpactReport(t *testing.T) {
	t.Parallel()
	p := paper.TeamA()
	im, err := impact.AnalyzeEdits(p, []impact.Edit{{Kind: impact.SwapRules, Index: 0, J: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteImpactReport(&sb, im); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "before") || !strings.Contains(out, "after") {
		t.Errorf("impact columns missing:\n%s", out)
	}
	if !strings.Contains(out, "attribution") {
		t.Errorf("attribution section missing:\n%s", out)
	}

	// No-op change.
	im2, err := impact.Analyze(p, p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteImpactReport(&sb, im2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no functional impact") {
		t.Errorf("no-op should be reported: %q", sb.String())
	}
}

// failWriter errors after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWrite
	}
	f.n--
	return len(p), nil
}

var errWrite = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "sink full" }

func TestWritersPropagateErrors(t *testing.T) {
	t.Parallel()
	report := paperReport(t)
	p := paper.TeamA()
	im, err := impact.Analyze(p, paperAfterSwap(t))
	if err != nil {
		t.Fatal(err)
	}
	writers := []struct {
		name string
		fn   func(w *failWriter) error
	}{
		{"discrepancy", func(w *failWriter) error {
			return WriteDiscrepancyTable(w, paper.Schema(), report.Discrepancies, "A", "B")
		}},
		{"resolution", func(w *failWriter) error {
			return WriteResolutionTable(w, paper.Schema(), report.Discrepancies, nil)
		}},
		{"policy", func(w *failWriter) error {
			return WritePolicyTable(w, p)
		}},
		{"impact", func(w *failWriter) error {
			return WriteImpactReport(w, im)
		}},
		{"csv", func(w *failWriter) error {
			return NewCSV(w, "a").Row(1)
		}},
	}
	for _, wr := range writers {
		// Fail at each possible write position; the error must surface.
		for n := 0; n < 6; n++ {
			if err := wr.fn(&failWriter{n: n}); err == nil && n < 2 {
				t.Errorf("%s writer swallowed a write error at position %d", wr.name, n)
			}
		}
	}
}

func paperAfterSwap(t *testing.T) *rule.Policy {
	t.Helper()
	after, err := paper.TeamA().SwapRules(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return after
}

func TestCSVWriter(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	c := NewCSV(&sb, "n", "ms")
	if err := c.Row(100, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Row(200, 5.0); err != nil {
		t.Fatal(err)
	}
	want := "n,ms\n100,2.5\n200,5\n"
	if sb.String() != want {
		t.Fatalf("got %q, want %q", sb.String(), want)
	}
}
