// Package textio renders the human-readable reports of the diverse
// firewall design workflow: discrepancy tables in the format of the
// paper's Table 3, resolution tables (Table 4), change-impact reports, and
// CSV series for the benchmark harness.
//
// Human readability is a design requirement of the paper (Section 1.2):
// the discrepancies feed a discussion between design teams, so they are
// printed as rule-like rows with IP fields in prefix notation (Section
// 7.1), not as raw integers.
package textio

import (
	"fmt"
	"io"
	"strings"

	"diversefw/internal/compare"
	"diversefw/internal/field"
	"diversefw/internal/impact"
	"diversefw/internal/rule"
)

// WriteDiscrepancyTable renders a report in the layout of the paper's
// Table 3: one row per functional discrepancy, one column per field, then
// the two versions' decisions.
func WriteDiscrepancyTable(w io.Writer, schema *field.Schema, ds []compare.Discrepancy, nameA, nameB string) error {
	if len(ds) == 0 {
		_, err := fmt.Fprintln(w, "no functional discrepancies: the firewalls are equivalent")
		return err
	}
	header := make([]string, 0, schema.NumFields()+3)
	header = append(header, "#")
	for i := 0; i < schema.NumFields(); i++ {
		header = append(header, schema.Field(i).Name)
	}
	header = append(header, nameA, nameB)

	rows := make([][]string, 0, len(ds))
	for i, d := range ds {
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprintf("%d", i+1))
		for fi, s := range d.Pred {
			row = append(row, rule.FormatValueSet(schema.Field(fi), s))
		}
		row = append(row, d.A.String(), d.B.String())
		rows = append(rows, row)
	}
	return writeTable(w, header, rows)
}

// WriteResolutionTable renders a Table 4-style view: each discrepancy row
// plus the agreed decision.
func WriteResolutionTable(w io.Writer, schema *field.Schema, ds []compare.Discrepancy, resolved []rule.Decision) error {
	header := make([]string, 0, schema.NumFields()+2)
	header = append(header, "#")
	for i := 0; i < schema.NumFields(); i++ {
		header = append(header, schema.Field(i).Name)
	}
	header = append(header, "resolved")

	rows := make([][]string, 0, len(ds))
	for i, d := range ds {
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprintf("%d", i+1))
		for fi, s := range d.Pred {
			row = append(row, rule.FormatValueSet(schema.Field(fi), s))
		}
		dec := "?"
		if i < len(resolved) && resolved[i] > 0 {
			dec = resolved[i].String()
		}
		row = append(row, dec)
		rows = append(rows, row)
	}
	return writeTable(w, header, rows)
}

// WriteImpactReport renders a change-impact analysis: the discrepancy
// table (old decision vs new decision) plus per-region attributions.
func WriteImpactReport(w io.Writer, im *impact.Impact) error {
	if im.None() {
		_, err := fmt.Fprintln(w, "the change has no functional impact")
		return err
	}
	schema := im.Before.Schema
	if err := WriteDiscrepancyTable(w, schema, im.Report.Discrepancies, "before", "after"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nattribution (first-match rule per region):"); err != nil {
		return err
	}
	for i, a := range im.Attribute() {
		if _, err := fmt.Fprintf(w, "  region %d: decided by rule %d before, rule %d after\n",
			i+1, a.BeforeRule+1, a.AfterRule+1); err != nil {
			return err
		}
	}
	return nil
}

// WritePolicyTable renders a policy in the layout of the paper's Tables
// 1-2: one row per rule, one column per field, then the decision.
func WritePolicyTable(w io.Writer, p *rule.Policy) error {
	header := make([]string, 0, p.Schema.NumFields()+2)
	header = append(header, "rule")
	for i := 0; i < p.Schema.NumFields(); i++ {
		header = append(header, p.Schema.Field(i).Name)
	}
	header = append(header, "decision")

	rows := make([][]string, 0, p.Size())
	for i, r := range p.Rules {
		row := make([]string, 0, len(header))
		row = append(row, fmt.Sprintf("r%d", i+1))
		for fi, s := range r.Pred {
			row = append(row, rule.FormatValueSet(p.Schema.Field(fi), s))
		}
		row = append(row, r.Decision.String())
		rows = append(rows, row)
	}
	return writeTable(w, header, rows)
}

// writeTable prints an aligned ASCII table.
func writeTable(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, width := range widths {
		total += width + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// CSVWriter accumulates rows of a benchmark series and writes them as CSV.
type CSVWriter struct {
	w      io.Writer
	header []string
	wrote  bool
}

// NewCSV returns a writer that will emit the header before the first row.
func NewCSV(w io.Writer, header ...string) *CSVWriter {
	return &CSVWriter{w: w, header: header}
}

// Row writes one data row; values are formatted with %v.
func (c *CSVWriter) Row(values ...interface{}) error {
	if !c.wrote {
		c.wrote = true
		if _, err := fmt.Fprintln(c.w, strings.Join(c.header, ",")); err != nil {
			return err
		}
	}
	parts := make([]string, len(values))
	for i, v := range values {
		parts[i] = fmt.Sprintf("%v", v)
	}
	_, err := fmt.Fprintln(c.w, strings.Join(parts, ","))
	return err
}
