package packet

import (
	"testing"

	"diversefw/internal/field"
	"diversefw/internal/interval"
	"diversefw/internal/paper"
	"diversefw/internal/rule"
)

func smallSchema() *field.Schema {
	return field.MustSchema(
		field.Field{Name: "x", Domain: interval.MustNew(0, 9), Kind: field.KindInt},
		field.Field{Name: "y", Domain: interval.MustNew(0, 99), Kind: field.KindInt},
	)
}

func TestUniformStaysInDomain(t *testing.T) {
	t.Parallel()
	s := smallSchema()
	sm := NewSampler(s, 1)
	for i := 0; i < 1000; i++ {
		pkt := sm.Uniform()
		if len(pkt) != 2 {
			t.Fatalf("arity %d", len(pkt))
		}
		if pkt[0] > 9 || pkt[1] > 99 {
			t.Fatalf("out of domain: %v", pkt)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	t.Parallel()
	s := smallSchema()
	a, b := NewSampler(s, 42), NewSampler(s, 42)
	for i := 0; i < 100; i++ {
		pa, pb := a.Uniform(), b.Uniform()
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("same seed diverged at draw %d: %v vs %v", i, pa, pb)
			}
		}
	}
}

func TestUniformCoversDomain(t *testing.T) {
	t.Parallel()
	s := smallSchema()
	sm := NewSampler(s, 7)
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		seen[sm.Uniform()[0]] = true
	}
	for v := uint64(0); v <= 9; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn from [0,9] in 2000 draws", v)
		}
	}
}

func TestUniformFullWidthDomains(t *testing.T) {
	t.Parallel()
	s := field.MustSchema(
		field.Field{Name: "wide", Domain: interval.MustNew(0, ^uint64(0)), Kind: field.KindInt},
		field.Field{Name: "big", Domain: interval.MustNew(0, 1<<63), Kind: field.KindInt},
	)
	sm := NewSampler(s, 3)
	for i := 0; i < 100; i++ {
		pkt := sm.Uniform()
		if pkt[1] > 1<<63 {
			t.Fatalf("big field out of domain: %d", pkt[1])
		}
	}
}

func TestBiasedHitsNarrowRules(t *testing.T) {
	t.Parallel()
	// The paper's Team A policy has a single-IP destination; uniform
	// sampling of a 32-bit field virtually never hits it, biased must.
	p := paper.TeamA()
	sm := NewSampler(p.Schema, 11)
	hits := 0
	for i := 0; i < 300; i++ {
		pkt := sm.Biased(p)
		if pkt[paper.FieldD] == paper.Gamma {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("biased sampling never hit the mail-server rule")
	}
}

func TestBiasedEmptyPolicyFallsBack(t *testing.T) {
	t.Parallel()
	s := smallSchema()
	p := rule.MustPolicy(s, nil)
	sm := NewSampler(s, 5)
	pkt := sm.Biased(p)
	if len(pkt) != 2 {
		t.Fatalf("fallback packet arity %d", len(pkt))
	}
}

func TestBiasedPairStaysInDomain(t *testing.T) {
	t.Parallel()
	a, b := paper.TeamA(), paper.TeamB()
	sm := NewSampler(a.Schema, 13)
	for i := 0; i < 500; i++ {
		pkt := sm.BiasedPair(a, b)
		for fi, v := range pkt {
			if !a.Schema.Domain(fi).Contains(v) {
				t.Fatalf("field %d value %d out of domain", fi, v)
			}
		}
	}
}

func TestOracleAndAgree(t *testing.T) {
	t.Parallel()
	a, b := paper.TeamA(), paper.TeamB()

	// A packet both policies accept: outgoing traffic (I = 1).
	out := rule.Packet{1, 0, 0, 80, 0}
	if d, ok := Oracle(a, out); !ok || d != rule.Accept {
		t.Fatalf("TeamA outgoing = %v, %v", d, ok)
	}
	if !Agree(a, b, out) {
		t.Fatal("teams should agree on outgoing traffic")
	}

	// The paper's discrepancy 1: malicious host e-mails the server.
	mal := rule.Packet{0, paper.Alpha, paper.Gamma, 25, paper.TCP}
	da, _ := Oracle(a, mal)
	db, _ := Oracle(b, mal)
	if da != rule.Accept || db != rule.Discard {
		t.Fatalf("discrepancy packet decisions = %v, %v", da, db)
	}
	if Agree(a, b, mal) {
		t.Fatal("teams must disagree on the discrepancy packet")
	}
}

func TestAgreeWhenNeitherMatches(t *testing.T) {
	t.Parallel()
	s := smallSchema()
	empty := rule.MustPolicy(s, nil)
	if !Agree(empty, empty, rule.Packet{0, 0}) {
		t.Fatal("two non-matching policies agree by convention")
	}
	ca := rule.MustPolicy(s, []rule.Rule{rule.CatchAll(s, rule.Accept)})
	if Agree(empty, ca, rule.Packet{0, 0}) {
		t.Fatal("matched vs unmatched should disagree")
	}
}
