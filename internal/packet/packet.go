// Package packet provides packet sampling and a brute-force first-match
// oracle used for differential testing of every FDD algorithm.
//
// The oracle is the definition itself: scan the rule list, return the
// decision of the first matching rule (Section 3.1). Any cleverer data
// structure in this repository — FDDs, shaped FDDs, generated firewalls —
// must agree with this oracle on every sampled packet.
package packet

import (
	"math/rand"

	"diversefw/internal/field"
	"diversefw/internal/interval"
	"diversefw/internal/rule"
)

// Sampler draws packets from a schema's packet space Σ.
type Sampler struct {
	schema *field.Schema
	rng    *rand.Rand
}

// NewSampler returns a deterministic sampler seeded with seed.
func NewSampler(schema *field.Schema, seed int64) *Sampler {
	return &Sampler{schema: schema, rng: rand.New(rand.NewSource(seed))}
}

// Uniform draws one packet uniformly at random from the packet space.
func (s *Sampler) Uniform() rule.Packet {
	pkt := make(rule.Packet, s.schema.NumFields())
	for i := 0; i < s.schema.NumFields(); i++ {
		pkt[i] = s.uniformIn(s.schema.Domain(i))
	}
	return pkt
}

// uniformIn draws a value uniformly from the closed interval.
func (s *Sampler) uniformIn(iv interval.Interval) uint64 {
	span := iv.Hi - iv.Lo
	if span == ^uint64(0) {
		return s.rng.Uint64()
	}
	if n := span + 1; n <= 1<<62 {
		return iv.Lo + uint64(s.rng.Int63n(int64(n)))
	}
	// Rejection sampling for domains too wide for Int63n
	// (acceptance probability is at least 1/4 here).
	for {
		if v := s.rng.Uint64(); v <= span {
			return iv.Lo + v
		}
	}
}

// Biased draws a packet that lies inside a uniformly chosen rule of the
// policy, with each field value drawn from the rule's value set. Uniform
// sampling almost never hits narrow rules (a /32 source is a 2^-32 event);
// biased sampling exercises exactly the regions where policies disagree.
func (s *Sampler) Biased(p *rule.Policy) rule.Packet {
	if len(p.Rules) == 0 {
		return s.Uniform()
	}
	r := p.Rules[s.rng.Intn(len(p.Rules))]
	pkt := make(rule.Packet, len(r.Pred))
	for i, valueSet := range r.Pred {
		pkt[i] = s.fromSet(valueSet)
	}
	return pkt
}

// BiasedPair draws a packet inside a random rule of either policy, and
// additionally perturbs one field to a domain boundary with small
// probability — boundary values are where off-by-one interval bugs live.
func (s *Sampler) BiasedPair(a, b *rule.Policy) rule.Packet {
	var pkt rule.Packet
	if s.rng.Intn(2) == 0 {
		pkt = s.Biased(a)
	} else {
		pkt = s.Biased(b)
	}
	if s.rng.Intn(8) == 0 {
		i := s.rng.Intn(len(pkt))
		d := s.schema.Domain(i)
		if s.rng.Intn(2) == 0 {
			pkt[i] = d.Lo
		} else {
			pkt[i] = d.Hi
		}
	}
	return pkt
}

// fromSet draws a value from the set, weighting intervals by index (not
// size) so narrow intervals are hit often.
func (s *Sampler) fromSet(set interval.Set) uint64 {
	ivs := set.Intervals()
	if len(ivs) == 0 {
		return 0
	}
	iv := ivs[s.rng.Intn(len(ivs))]
	return s.uniformIn(iv)
}

// Oracle evaluates the policy by brute force. It returns the decision and
// whether any rule matched.
func Oracle(p *rule.Policy, pkt rule.Packet) (rule.Decision, bool) {
	d, _, ok := p.Decide(pkt)
	return d, ok
}

// Agree reports whether two policies give the same decision for the
// packet. Packets that match neither policy count as agreement.
func Agree(a, b *rule.Policy, pkt rule.Packet) bool {
	da, oka := Oracle(a, pkt)
	db, okb := Oracle(b, pkt)
	if oka != okb {
		return false
	}
	return !oka || da == db
}
