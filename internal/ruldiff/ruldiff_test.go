package ruldiff

import (
	"strings"
	"testing"

	"diversefw/internal/field"
	"diversefw/internal/interval"
	"diversefw/internal/paper"
	"diversefw/internal/rule"
)

func TestComputeInsert(t *testing.T) {
	t.Parallel()
	old := paper.TeamA()
	new, err := old.InsertRule(0, rule.CatchAll(old.Schema, rule.Discard))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 1 || d.Deleted != 0 || d.Kept != old.Size() {
		t.Fatalf("counts = %d/%d/%d", d.Inserted, d.Deleted, d.Kept)
	}
	if d.FunctionallyEquivalent() {
		t.Fatal("inserting a discard-all at the top is very much functional")
	}
	if d.Edits[0].Op != Insert || d.Edits[0].NewIndex != 0 {
		t.Fatalf("first edit = %+v", d.Edits[0])
	}
}

func TestComputeCosmeticReorder(t *testing.T) {
	t.Parallel()
	// Two disjoint rules swapped: textual change, no functional change.
	s := field.MustSchema(field.Field{Name: "x", Domain: interval.MustNew(0, 99), Kind: field.KindInt})
	old := rule.MustPolicy(s, []rule.Rule{
		{Pred: rule.Predicate{interval.SetOf(0, 10)}, Decision: rule.Discard},
		{Pred: rule.Predicate{interval.SetOf(20, 30)}, Decision: rule.Discard},
		rule.CatchAll(s, rule.Accept),
	})
	new, err := old.SwapRules(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if !d.FunctionallyEquivalent() {
		t.Fatal("swapping disjoint rules must be cosmetic")
	}
	if d.Inserted == 0 || d.Deleted == 0 {
		t.Fatal("a swap should show as delete+insert in the textual diff")
	}
	if !strings.Contains(d.Render(), "no functional change") {
		t.Fatalf("render verdict wrong:\n%s", d.Render())
	}
}

func TestComputeFunctionalReorder(t *testing.T) {
	t.Parallel()
	// The paper's dominant error: conflicting rules reordered. Small
	// textual diff, real functional change.
	old := paper.TeamA()
	new, err := old.SwapRules(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Compute(old, new)
	if err != nil {
		t.Fatal(err)
	}
	if d.FunctionallyEquivalent() {
		t.Fatal("swapping conflicting rules changes behaviour")
	}
	if len(d.Impact.Discrepancies) != 1 {
		t.Fatalf("expected the malicious-mail region, got %d", len(d.Impact.Discrepancies))
	}
	if !strings.Contains(d.Render(), "1 functional discrepancy") {
		t.Fatalf("render verdict wrong:\n%s", d.Render())
	}
}

func TestComputeIdentical(t *testing.T) {
	t.Parallel()
	p := paper.TeamB()
	d, err := Compute(p, p.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d.Inserted != 0 || d.Deleted != 0 || d.Kept != p.Size() {
		t.Fatalf("identical policies should be all-keep: %d/%d/%d", d.Inserted, d.Deleted, d.Kept)
	}
	if !d.FunctionallyEquivalent() {
		t.Fatal("identical policies are equivalent")
	}
}

func TestComputeSchemaMismatch(t *testing.T) {
	t.Parallel()
	s := field.MustSchema(field.Field{Name: "x", Domain: interval.MustNew(0, 9), Kind: field.KindInt})
	p := rule.MustPolicy(s, []rule.Rule{rule.CatchAll(s, rule.Accept)})
	if _, err := Compute(p, paper.TeamA()); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}

func TestLCS(t *testing.T) {
	t.Parallel()
	a := []string{"a", "b", "c", "d"}
	b := []string{"b", "x", "d"}
	pairs := lcs(a, b)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	if a[pairs[0][0]] != "b" || a[pairs[1][0]] != "d" {
		t.Fatalf("pairs = %v", pairs)
	}
	if len(lcs(nil, b)) != 0 || len(lcs(a, nil)) != 0 {
		t.Fatal("empty side should give empty LCS")
	}
}
