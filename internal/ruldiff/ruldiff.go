// Package ruldiff computes rule-level diffs between two versions of a
// policy — the "what changed in the file" view that complements the
// semantic comparison. An administrator reviewing a change wants both:
// which rules were added, removed, or kept (an LCS diff over the rule
// sequence), and whether the textual change matters (the exact impact
// analysis).
//
// The paper's Section 8.1 observation motivates the pairing: most errors
// were rules added in the wrong position, which look innocuous in a
// textual diff but change behaviour — and vice versa, reorderings of
// disjoint rules look scary and change nothing. Each hunk is therefore
// annotated with whether the overall change is functionally visible.
package ruldiff

import (
	"fmt"
	"strings"

	"diversefw/internal/compare"
	"diversefw/internal/rule"
)

// Op is a diff operation.
type Op int

const (
	// Keep: the rule appears in both versions (possibly at a different
	// position).
	Keep Op = iota + 1
	// Delete: the rule exists only in the old version.
	Delete
	// Insert: the rule exists only in the new version.
	Insert
)

// String renders the op as a diff marker.
func (o Op) String() string {
	switch o {
	case Keep:
		return " "
	case Delete:
		return "-"
	case Insert:
		return "+"
	default:
		return "?"
	}
}

// Edit is one line of the rule-level diff.
type Edit struct {
	Op Op
	// OldIndex and NewIndex are 0-based rule positions; -1 when the rule
	// is absent from that side.
	OldIndex, NewIndex int
	// Text is the rule in the policy text format.
	Text string
}

// Diff is the combined textual + semantic view of a policy change.
type Diff struct {
	Edits []Edit
	// Inserted, Deleted, Kept count the edit kinds.
	Inserted, Deleted, Kept int
	// Impact is the exact functional impact of the change; Impact.None()
	// distinguishes cosmetic edits from behavioural ones.
	Impact *compare.Report
}

// FunctionallyEquivalent reports whether the change is purely cosmetic.
func (d *Diff) FunctionallyEquivalent() bool { return d.Impact.Equivalent() }

// Compute builds the rule-level diff between two versions of a policy.
func Compute(old, new *rule.Policy) (*Diff, error) {
	if !old.Schema.Equal(new.Schema) {
		return nil, fmt.Errorf("ruldiff: schemas differ")
	}
	oldLines := formatRules(old)
	newLines := formatRules(new)

	keep := lcs(oldLines, newLines)
	var edits []Edit
	i, j := 0, 0
	for _, pair := range keep {
		for i < pair[0] {
			edits = append(edits, Edit{Op: Delete, OldIndex: i, NewIndex: -1, Text: oldLines[i]})
			i++
		}
		for j < pair[1] {
			edits = append(edits, Edit{Op: Insert, OldIndex: -1, NewIndex: j, Text: newLines[j]})
			j++
		}
		edits = append(edits, Edit{Op: Keep, OldIndex: i, NewIndex: j, Text: oldLines[i]})
		i++
		j++
	}
	for i < len(oldLines) {
		edits = append(edits, Edit{Op: Delete, OldIndex: i, NewIndex: -1, Text: oldLines[i]})
		i++
	}
	for j < len(newLines) {
		edits = append(edits, Edit{Op: Insert, OldIndex: -1, NewIndex: j, Text: newLines[j]})
		j++
	}

	report, err := compare.Diff(old, new)
	if err != nil {
		return nil, err
	}
	d := &Diff{Edits: edits, Impact: report}
	for _, e := range edits {
		switch e.Op {
		case Keep:
			d.Kept++
		case Delete:
			d.Deleted++
		case Insert:
			d.Inserted++
		}
	}
	return d, nil
}

// Render prints the diff in unified style with the semantic verdict.
func (d *Diff) Render() string {
	var sb strings.Builder
	for _, e := range d.Edits {
		sb.WriteString(e.Op.String())
		sb.WriteByte(' ')
		sb.WriteString(e.Text)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "-- %d kept, %d deleted, %d inserted; ", d.Kept, d.Deleted, d.Inserted)
	if d.FunctionallyEquivalent() {
		sb.WriteString("no functional change\n")
	} else {
		fmt.Fprintf(&sb, "%d functional discrepancy regions\n", len(d.Impact.Discrepancies))
	}
	return sb.String()
}

func formatRules(p *rule.Policy) []string {
	out := make([]string, p.Size())
	for i, r := range p.Rules {
		out[i] = rule.FormatRule(p.Schema, r)
	}
	return out
}

// lcs returns the index pairs of a longest common subsequence of a and b.
func lcs(a, b []string) [][2]int {
	n, m := len(a), len(b)
	// dp[i][j] = LCS length of a[i:], b[j:].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	var out [][2]int
	for i, j := 0, 0; i < n && j < m; {
		switch {
		case a[i] == b[j]:
			out = append(out, [2]int{i, j})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return out
}
