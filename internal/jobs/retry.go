package jobs

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"io"
	"time"

	"diversefw/internal/fdd"
	"diversefw/internal/guard"
)

// transientError classifies a pair failure for the retry policy.
//
// Permanent: the input itself is the problem — a work-budget trip
// (policy_too_complex: the pair's diagram blows up and will blow up
// identically on every attempt) or a non-comprehensive policy
// (unparseable/incomplete: no FDD exists to build). Retrying those
// burns worker time to reach the same answer.
//
// Transient: everything else — context deadlines, injected chaos
// latency and faults, shed dependencies, I/O hiccups. Those are
// properties of the moment, not the pair, so a backed-off retry has a
// real chance.
func transientError(err error) bool {
	switch {
	case errors.Is(err, guard.ErrBudget):
		return false
	case errors.Is(err, fdd.ErrIncomplete):
		return false
	}
	return true
}

// retryDelay is the capped exponential backoff before attempt+1:
// base·2^(attempt−1), capped at 16·base, then jittered into
// [d/2, d] deterministically from (job, pair, attempt) — reruns of a
// seeded scenario see identical retry timing, while the pairs of one
// job still spread out instead of thundering back in lockstep.
func retryDelay(base time.Duration, jobID string, k, attempt int) time.Duration {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 4 {
		shift = 4
	}
	d := uint64(base << shift)
	h := fnv.New64a()
	io.WriteString(h, jobID)
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:4], uint32(k))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(attempt))
	h.Write(buf[:])
	return time.Duration(d/2 + h.Sum64()%(d/2+1))
}
