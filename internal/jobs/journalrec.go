package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
	"time"

	"diversefw/internal/compare"
	"diversefw/internal/field"
	"diversefw/internal/rule"
)

// The journal is a sequence of length+CRC32-framed JSON records, one per
// job lifecycle event. Framing over bare JSON lines because the failure
// mode that matters is a torn write at process death: a length prefix
// tells replay exactly where the next record should end, and the CRC
// tells it whether the bytes inside are the bytes that were written.
// Replay distinguishes the two corruptions the format can express — a
// frame that runs past EOF is a torn tail (truncate, keep everything
// before it), a frame whose checksum fails is bit rot or a torn middle
// (skip it, keep counting) — and recovers everything else.

// Journal record types. submit/settle/cancel/finalize mirror the job
// lifecycle; delete records retention purges so replay does not
// resurrect jobs the coordinator already aged out.
const (
	recSubmit   = "submit"
	recSettle   = "settle"
	recCancel   = "cancel"
	recFinalize = "finalize"
	recDelete   = "delete"
)

// record is one framed journal entry. Exactly one of the type-specific
// payloads is set, keyed by Type.
type record struct {
	Type string `json:"type"`
	Job  string `json:"job"`
	// Submit is set for recSubmit.
	Submit *submitRecord `json:"submit,omitempty"`
	// Settle is set for recSettle.
	Settle *settleRecord `json:"settle,omitempty"`
	// State and AtNanos are set for recCancel and recFinalize.
	State   string `json:"state,omitempty"`
	AtNanos int64  `json:"at,omitempty"`
}

// submitRecord persists everything needed to rebuild a Job's spec:
// policies round-trip through the rule text format, so the journal is
// self-contained (no reference to request bodies that died with the
// process).
type submitRecord struct {
	Kind         string   `json:"kind"`
	Schema       string   `json:"schema"`
	Names        []string `json:"names"`
	Policies     []string `json:"policies"`
	Pairs        [][2]int `json:"pairs"`
	PairNames    []string `json:"pairNames"`
	CreatedNanos int64    `json:"created"`
}

// settleRecord persists one pair's terminal outcome. The report is
// rendered through the rule text format (parse-backable); the error
// keeps its message but drops its Go type — after a restart a restored
// pair error renders with the generic unprocessable code.
type settleRecord struct {
	Pair         int           `json:"pair"`
	Status       string        `json:"status"`
	Err          string        `json:"err,omitempty"`
	Attempts     int           `json:"attempts,omitempty"`
	Quarantined  bool          `json:"quarantined,omitempty"`
	ElapsedNanos int64         `json:"elapsed,omitempty"`
	Report       *reportRecord `json:"report,omitempty"`
}

// reportRecord is a compare.Report rendered for the journal.
type reportRecord struct {
	RawPaths      int                 `json:"rawPaths"`
	PathsCompared int                 `json:"pathsCompared"`
	Discrepancies []discrepancyRecord `json:"discrepancies,omitempty"`
}

// discrepancyRecord is one discrepancy row: per-field value sets in the
// rule text syntax plus the two decisions.
type discrepancyRecord struct {
	Pred []string `json:"pred"`
	A    string   `json:"a"`
	B    string   `json:"b"`
}

// journalSchema resolves the schema names jobs are submitted with (the
// same set the API accepts; empty means the API default).
func journalSchema(name string) (*field.Schema, error) {
	switch name {
	case "", "five":
		return field.IPv4FiveTuple(), nil
	case "four":
		return field.FourTuple(), nil
	case "paper":
		return field.PaperExample(), nil
	default:
		return nil, fmt.Errorf("jobs: unknown schema %q in journal", name)
	}
}

// encodeReport renders a compare.Report for the journal. Timing is not
// persisted: it described a run of a process that no longer exists.
func encodeReport(schema *field.Schema, r *compare.Report) *reportRecord {
	if r == nil {
		return nil
	}
	rr := &reportRecord{RawPaths: r.RawPaths, PathsCompared: r.PathsCompared}
	for _, d := range r.Discrepancies {
		dr := discrepancyRecord{A: d.A.String(), B: d.B.String()}
		for i, s := range d.Pred {
			dr.Pred = append(dr.Pred, rule.FormatValueSet(schema.Field(i), s))
		}
		rr.Discrepancies = append(rr.Discrepancies, dr)
	}
	return rr
}

// decodeReport parses a journaled report back into a compare.Report.
// A discrepancy that fails to parse is dropped rather than failing the
// whole job: RawPaths still records the pre-merge count, and losing a
// row beats losing the job.
func decodeReport(schema *field.Schema, rr *reportRecord) *compare.Report {
	if rr == nil {
		return nil
	}
	r := &compare.Report{RawPaths: rr.RawPaths, PathsCompared: rr.PathsCompared}
	for _, dr := range rr.Discrepancies {
		if len(dr.Pred) != schema.NumFields() {
			continue
		}
		d := compare.Discrepancy{Pred: make(rule.Predicate, len(dr.Pred))}
		ok := true
		for i, text := range dr.Pred {
			s, err := rule.ParseValueSet(schema.Field(i), text)
			if err != nil {
				ok = false
				break
			}
			d.Pred[i] = s
		}
		if !ok {
			continue
		}
		var err error
		if d.A, err = parseDecision(dr.A); err != nil {
			continue
		}
		if d.B, err = parseDecision(dr.B); err != nil {
			continue
		}
		r.Discrepancies = append(r.Discrepancies, d)
	}
	return r
}

// parseDecision is rule.ParseDecision plus the numeric decision#N form
// Decision.String falls back to for non-standard decision sets.
func parseDecision(s string) (rule.Decision, error) {
	if rest, ok := strings.CutPrefix(s, "decision#"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return 0, fmt.Errorf("jobs: bad decision %q", s)
		}
		return rule.Decision(n), nil
	}
	return rule.ParseDecision(s)
}

// Framing: [uint32 payload length][uint32 CRC32 (IEEE) of payload]
// [payload], both integers little-endian.
const (
	frameHeaderLen = 8
	// maxFramePayload bounds one record; anything larger in a length
	// field is corruption, not data (a submit record for 64 maximal
	// policies stays well under this).
	maxFramePayload = 16 << 20
)

// appendFrame frames payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// walkFrames scans framed data, calling fn for every complete frame with
// its payload and checksum verdict. It returns the offset where a torn
// tail begins: len(data) when the file ends cleanly on a frame boundary,
// earlier when the final frame is incomplete or a length field is
// implausible (once a length can't be trusted, the rest of the stream
// can't be re-synchronized and is treated as torn).
func walkFrames(data []byte, fn func(payload []byte, crcOK bool)) (tornAt int) {
	off := 0
	for {
		if len(data)-off < frameHeaderLen {
			if len(data)-off == 0 {
				return len(data)
			}
			return off
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if n == 0 || n > maxFramePayload || off+frameHeaderLen+n > len(data) {
			return off
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+frameHeaderLen : off+frameHeaderLen+n]
		fn(payload, crc32.ChecksumIEEE(payload) == want)
		off += frameHeaderLen + n
	}
}

// jobState is the journal's view of one job: exactly the state replay
// produces, maintained live as records are appended so compaction can
// snapshot without touching the coordinator's Job mutexes (which would
// invert the settle-path lock order).
type jobState struct {
	ID       string          `json:"id"`
	Submit   submitRecord    `json:"submit"`
	State    string          `json:"state"`
	Finished int64           `json:"finished,omitempty"`
	Settles  []*settleRecord `json:"settles"`
}

// shadow is the journal's full state: jobStates in insertion order.
type shadow struct {
	order []string
	jobs  map[string]*jobState
}

func newShadow() *shadow { return &shadow{jobs: make(map[string]*jobState)} }

// apply folds one record into the shadow. Idempotent by construction —
// replaying a log over a snapshot that already contains its effects is
// a sequence of no-ops — because compaction's crash window (snapshot
// renamed, log not yet reset) replays exactly that way.
func (sh *shadow) apply(rec *record) error {
	switch rec.Type {
	case recSubmit:
		if rec.Submit == nil {
			return fmt.Errorf("jobs: submit record without body")
		}
		if _, ok := sh.jobs[rec.Job]; ok {
			return nil
		}
		if len(rec.Submit.Names) != len(rec.Submit.Policies) ||
			len(rec.Submit.PairNames) != len(rec.Submit.Pairs) || len(rec.Submit.Pairs) == 0 {
			return fmt.Errorf("jobs: malformed submit record")
		}
		sh.jobs[rec.Job] = &jobState{
			ID:      rec.Job,
			Submit:  *rec.Submit,
			State:   string(StateQueued),
			Settles: make([]*settleRecord, len(rec.Submit.Pairs)),
		}
		sh.order = append(sh.order, rec.Job)
	case recSettle:
		st, ok := sh.jobs[rec.Job]
		if !ok {
			return fmt.Errorf("jobs: settle for unknown job %q", rec.Job)
		}
		if rec.Settle == nil || rec.Settle.Pair < 0 || rec.Settle.Pair >= len(st.Settles) {
			return fmt.Errorf("jobs: settle pair out of range")
		}
		switch PairStatus(rec.Settle.Status) {
		case PairOK, PairError, PairSkipped:
		default:
			return fmt.Errorf("jobs: settle with status %q", rec.Settle.Status)
		}
		if st.Settles[rec.Settle.Pair] != nil {
			return nil
		}
		st.Settles[rec.Settle.Pair] = rec.Settle
		if st.State == string(StateQueued) {
			st.State = string(StateRunning)
		}
	case recCancel, recFinalize:
		st, ok := sh.jobs[rec.Job]
		if !ok {
			return fmt.Errorf("jobs: %s for unknown job %q", rec.Type, rec.Job)
		}
		state := State(rec.State)
		if !state.Terminal() {
			return fmt.Errorf("jobs: %s with non-terminal state %q", rec.Type, rec.State)
		}
		if State(st.State).Terminal() {
			return nil
		}
		// A cancel (and a finalize replayed without its trailing settles)
		// implies every unsettled pair was, or would have been, skipped.
		for k, s := range st.Settles {
			if s == nil {
				st.Settles[k] = &settleRecord{Pair: k, Status: string(PairSkipped)}
			}
		}
		st.State = string(state)
		st.Finished = rec.AtNanos
	case recDelete:
		if _, ok := sh.jobs[rec.Job]; !ok {
			return nil
		}
		delete(sh.jobs, rec.Job)
		for i, id := range sh.order {
			if id == rec.Job {
				sh.order = append(sh.order[:i], sh.order[i+1:]...)
				break
			}
		}
	default:
		return errUnknownRecord
	}
	return nil
}

var errUnknownRecord = fmt.Errorf("jobs: unknown journal record type")

// states returns the shadow's jobStates in insertion order (the
// snapshot body).
func (sh *shadow) states() []*jobState {
	out := make([]*jobState, 0, len(sh.order))
	for _, id := range sh.order {
		out = append(out, sh.jobs[id])
	}
	return out
}

// snapshotFile is the compaction snapshot document.
type snapshotFile struct {
	Version int         `json:"version"`
	Jobs    []*jobState `json:"jobs"`
}

// materialize builds a *Job from a replayed jobState. The returned job
// has its spec, hashes, and settled pairs restored but no context,
// trace, or done channel — the coordinator attaches those when it
// adopts recovered jobs (New → adoptRecovered).
func materialize(st *jobState) (*Job, error) {
	schema, err := journalSchema(st.Submit.Schema)
	if err != nil {
		return nil, err
	}
	kind := Kind(st.Submit.Kind)
	if kind != KindCrossCompare && kind != KindBatchDiff {
		return nil, fmt.Errorf("jobs: unknown kind %q in journal", st.Submit.Kind)
	}
	spec := Spec{
		Kind:       kind,
		SchemaName: st.Submit.Schema,
		Names:      st.Submit.Names,
		PairNames:  st.Submit.PairNames,
	}
	n := len(st.Submit.Names)
	for _, p := range st.Submit.Pairs {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return nil, fmt.Errorf("jobs: pair out of range in journal")
		}
		spec.Pairs = append(spec.Pairs, Pair{I: p[0], J: p[1]})
	}
	for _, text := range st.Submit.Policies {
		p, err := rule.ParsePolicyString(schema, text)
		if err != nil {
			return nil, fmt.Errorf("jobs: journaled policy: %w", err)
		}
		spec.Policies = append(spec.Policies, p)
	}
	j := &Job{
		id:      st.ID,
		spec:    spec,
		created: time.Unix(0, st.Submit.CreatedNanos),
		state:   State(st.State),
		pairs:   make([]PairResult, len(spec.Pairs)),
	}
	for k, p := range spec.Pairs {
		j.pairs[k] = PairResult{Pair: p, Name: spec.PairNames[k], Status: PairPending}
		s := st.Settles[k]
		if s == nil {
			continue
		}
		pr := &j.pairs[k]
		pr.Status = PairStatus(s.Status)
		pr.Attempts = s.Attempts
		pr.Quarantined = s.Quarantined
		pr.Elapsed = time.Duration(s.ElapsedNanos)
		if s.Err != "" {
			pr.Err = &restoredError{msg: s.Err}
		}
		pr.Report = decodeReport(schema, s.Report)
		j.settled++
		switch pr.Status {
		case PairOK:
			j.ok++
		case PairError:
			j.errs++
			if s.Quarantined {
				j.quarantined++
			}
		case PairSkipped:
			j.skipped++
		}
	}
	if j.state == StateRunning || (j.state == StateQueued && j.settled > 0) {
		j.state = StateRunning
		j.started = j.created
	}
	if j.state.Terminal() {
		j.finished = time.Unix(0, st.Finished)
		if st.Finished == 0 {
			j.finished = j.created
		}
		if !j.started.IsZero() || j.settled > 0 {
			j.started = j.created
		}
	}
	return j, nil
}

// restoredError is a pair error read back from the journal: the message
// survives a restart, the Go error type does not.
type restoredError struct{ msg string }

func (e *restoredError) Error() string { return e.msg }

// encodeRecord marshals a record for framing. The records are built by
// this package, so a marshal failure is a bug, not input.
func encodeRecord(rec *record) []byte {
	b, err := json.Marshal(rec)
	if err != nil {
		panic("jobs: journal record marshal: " + err.Error())
	}
	return b
}

// specRecord renders a Spec (plus creation time) as a submit record.
func specRecord(spec Spec, created time.Time) *submitRecord {
	sr := &submitRecord{
		Kind:         string(spec.Kind),
		Schema:       spec.SchemaName,
		Names:        spec.Names,
		PairNames:    spec.PairNames,
		CreatedNanos: created.UnixNano(),
	}
	for _, p := range spec.Policies {
		sr.Policies = append(sr.Policies, rule.FormatPolicy(p))
	}
	for _, p := range spec.Pairs {
		sr.Pairs = append(sr.Pairs, [2]int{p.I, p.J})
	}
	return sr
}
