package jobs

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"diversefw/internal/chaos"
	"diversefw/internal/engine"
	"diversefw/internal/metrics"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
	"diversefw/internal/trace"
)

// testPolicies builds n small distinct synthetic policies named p1..pn.
func testPolicies(t *testing.T, n int) ([]string, []*rule.Policy) {
	t.Helper()
	names := make([]string, n)
	policies := make([]*rule.Policy, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("p%d", i+1)
		policies[i] = synth.Synthetic(synth.Config{Rules: 15, Seed: int64(i + 1)})
	}
	return names, policies
}

// waitJob blocks until the job is terminal (or the test deadline).
func waitJob(t *testing.T, c *Coordinator, id string) Snapshot {
	t.Helper()
	done, err := c.Done(id)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	snap, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestHashSharder(t *testing.T) {
	s := HashSharder{}
	for workers := 1; workers <= 8; workers++ {
		for i := 0; i < 50; i++ {
			a, b := fmt.Sprintf("hash%d", i), fmt.Sprintf("hash%d", i*7+1)
			w := s.Shard(a, b, workers)
			if w < 0 || w >= workers {
				t.Fatalf("Shard(%q, %q, %d) = %d out of range", a, b, workers, w)
			}
			if w2 := s.Shard(a, b, workers); w2 != w {
				t.Fatalf("Shard not deterministic: %d then %d", w, w2)
			}
			// Symmetric: argument order must not change placement.
			if w2 := s.Shard(b, a, workers); w2 != w {
				t.Fatalf("Shard not symmetric: (a,b)=%d (b,a)=%d", w, w2)
			}
		}
	}
}

func TestCrossCompareJobCompletes(t *testing.T) {
	names, policies := testPolicies(t, 4)
	reg := metrics.NewRegistry()
	buf := trace.NewBuffer(8, 0, 0)
	c := New(engine.New(engine.Config{}), Config{Workers: 3, Metrics: reg, Traces: buf})
	defer c.Close()

	snap, err := c.Submit(Spec{Kind: KindCrossCompare, SchemaName: "five", Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Progress.Total != 6 {
		t.Fatalf("4 policies: total pairs = %d, want 6", snap.Progress.Total)
	}
	final := waitJob(t, c, snap.ID)
	if final.State != StateCompleted {
		t.Fatalf("state = %s", final.State)
	}
	p := final.Progress
	if p.Settled != 6 || p.OK != 6 || p.Errors != 0 || p.Skipped != 0 {
		t.Fatalf("progress = %+v", p)
	}
	for _, pr := range final.Pairs {
		if pr.Status != PairOK || pr.Report == nil || pr.Err != nil {
			t.Fatalf("pair %q = %+v", pr.Name, pr)
		}
	}
	if final.Pairs[0].Name != "p1 vs p2" {
		t.Fatalf("derived pair name = %q", final.Pairs[0].Name)
	}
	if final.TraceID == "" || final.Started.IsZero() || final.Finished.IsZero() {
		t.Fatalf("missing trace/timestamps: %+v", final)
	}
	// The RETAINED job trace carries one job.pair span per pair — the
	// last pair's span must land before finalize snapshots the trace.
	var jobTraces, pairSpans int
	for _, rec := range buf.Snapshot().Recent {
		if rec.Root.Name != "job" {
			continue
		}
		jobTraces++
		rec.Root.Walk(func(s trace.SpanRecord) {
			if s.Name == "job.pair" {
				pairSpans++
			}
		})
	}
	if jobTraces != 1 || pairSpans != 6 {
		t.Fatalf("retained traces: %d job traces with %d job.pair spans, want 1 with 6", jobTraces, pairSpans)
	}
}

func TestBatchDiffSelectsExactPairs(t *testing.T) {
	names, policies := testPolicies(t, 3)
	c := New(engine.New(engine.Config{}), Config{Workers: 2})
	defer c.Close()

	snap, err := c.Submit(Spec{
		Kind: KindBatchDiff, SchemaName: "five", Names: names, Policies: policies,
		Pairs:     []Pair{{I: 0, J: 2}, {I: 2, J: 1}},
		PairNames: []string{"edge", ""},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	if final.State != StateCompleted || final.Progress.OK != 2 {
		t.Fatalf("state = %s progress = %+v", final.State, final.Progress)
	}
	if final.Pairs[0].Name != "edge" || final.Pairs[1].Name != "p3 vs p2" {
		t.Fatalf("pair names = %q, %q", final.Pairs[0].Name, final.Pairs[1].Name)
	}
}

func TestSubmitValidation(t *testing.T) {
	names, policies := testPolicies(t, 2)
	c := New(engine.New(engine.Config{}), Config{})
	defer c.Close()

	cases := []Spec{
		{Kind: KindCrossCompare, Names: names[:1], Policies: policies[:1]},                   // too few
		{Kind: KindBatchDiff, Names: names, Policies: policies},                              // no pairs
		{Kind: KindBatchDiff, Names: names, Policies: policies, Pairs: []Pair{{I: 0, J: 5}}}, // out of range
		{Kind: KindBatchDiff, Names: names, Policies: policies, Pairs: []Pair{{I: 1, J: 1}}}, // self pair
		{Kind: Kind("frobnicate"), Names: names, Policies: policies},                         // unknown kind
		{Kind: KindCrossCompare, Names: names[:1], Policies: policies},                       // names mismatch
	}
	for i, spec := range cases {
		if _, err := c.Submit(spec); err == nil {
			t.Fatalf("case %d: Submit accepted invalid spec", i)
		}
	}
}

func TestCancelReachesInFlightPairs(t *testing.T) {
	names, policies := testPolicies(t, 3)
	// Every pair blocks until its context dies: cancellation is the only
	// way this job can end.
	remove := chaos.Register(chaos.PointJobPair, chaos.Latency(time.Hour))
	defer remove()

	c := New(engine.New(engine.Config{}), Config{Workers: 2})
	defer c.Close()
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, SchemaName: "five", Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for a worker to actually pick a pair up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := c.Get(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	canceled, err := c.Cancel(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("state after cancel = %s", canceled.State)
	}
	if canceled.Progress.Skipped != canceled.Progress.Total {
		t.Fatalf("progress after cancel = %+v, want all skipped", canceled.Progress)
	}
	// The Done channel is closed and a second cancel is a no-op.
	final := waitJob(t, c, snap.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %s", final.State)
	}
	if again, err := c.Cancel(snap.ID); err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: %v, state %s", err, again.State)
	}
}

func TestRetentionPurgesFinishedJobs(t *testing.T) {
	names, policies := testPolicies(t, 2)
	c := New(engine.New(engine.Config{}), Config{Workers: 1, Retention: 20 * time.Millisecond})
	defer c.Close()
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, SchemaName: "five", Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, snap.ID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Get(snap.ID); errors.Is(err, ErrNotFound) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never purged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := len(c.List()); n != 0 {
		t.Fatalf("List() has %d jobs after purge", n)
	}
}

func TestMaxJobsCap(t *testing.T) {
	names, policies := testPolicies(t, 2)
	remove := chaos.Register(chaos.PointJobPair, chaos.Latency(time.Hour))
	defer remove()
	c := New(engine.New(engine.Config{}), Config{Workers: 1, MaxJobs: 1})
	defer c.Close()
	spec := Spec{Kind: KindCrossCompare, SchemaName: "five", Names: names, Policies: policies}
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(spec); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("over-cap Submit = %v, want ErrTooManyJobs", err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	names, policies := testPolicies(t, 2)
	c := New(engine.New(engine.Config{}), Config{})
	c.Close()
	_, err := c.Submit(Spec{Kind: KindCrossCompare, SchemaName: "five", Names: names, Policies: policies})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

func TestCloseCancelsLiveJobs(t *testing.T) {
	names, policies := testPolicies(t, 3)
	remove := chaos.Register(chaos.PointJobPair, chaos.Latency(time.Hour))
	defer remove()
	c := New(engine.New(engine.Config{}), Config{Workers: 2})
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, SchemaName: "five", Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	final, err := c.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled {
		t.Fatalf("state after Close = %s", final.State)
	}
}
