package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"diversefw/internal/chaos"
	"diversefw/internal/engine"
	"diversefw/internal/metrics"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
)

// -update regenerates the corruption fixtures under testdata/journal.
var updateFixtures = flag.Bool("update", false, "rewrite journal corruption fixtures and their golden reports")

// openTestJournal opens a journal with fsync off (tests assert replay
// semantics, not durability against power loss).
func openTestJournal(t *testing.T, dir string) *JournalStore {
	t.Helper()
	s, err := OpenJournal(dir, JournalOptions{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestJournalRoundTripAcrossRestart: run a job to completion against a
// journaled store, reopen the directory, and get the same job back —
// state, per-pair statuses, and report contents — without recomputing
// anything.
func TestJournalRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	names, policies := testPolicies(t, 3)

	st, err := OpenJournal(dir, JournalOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c := New(engine.New(engine.Config{}), Config{Workers: 2, Store: st})
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	if final.State != StateCompleted || final.Progress.OK != 3 {
		t.Fatalf("first life: %+v", final.Progress)
	}
	c.Close()

	st2 := openTestJournal(t, dir)
	rep := st2.RecoveryReport()
	if rep.JobsRecovered != 1 || rep.JobsResumed != 0 || rep.PairsRestored != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.CorruptRecordsSkipped != 0 || rep.TornBytesTruncated != 0 || rep.JobsDropped != 0 {
		t.Fatalf("clean log tolerated something: %+v", rep)
	}
	c2 := New(engine.New(engine.Config{}), Config{Workers: 2, Store: st2})
	defer c2.Close()
	got, err := c2.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCompleted || got.Progress != final.Progress {
		t.Fatalf("restored = %+v, want %+v", got.Progress, final.Progress)
	}
	for k := range final.Pairs {
		want, have := final.Pairs[k], got.Pairs[k]
		if have.Status != want.Status || have.Name != want.Name || have.Attempts != want.Attempts {
			t.Fatalf("pair %d: %+v vs %+v", k, have, want)
		}
		if want.Report == nil || have.Report == nil {
			t.Fatalf("pair %d lost its report", k)
		}
		if have.Report.Equivalent() != want.Report.Equivalent() ||
			len(have.Report.Discrepancies) != len(want.Report.Discrepancies) ||
			have.Report.PathsCompared != want.Report.PathsCompared {
			t.Fatalf("pair %d report changed across restart", k)
		}
	}
	// The restored job is terminal: its done channel is already closed.
	done, err := c2.Done(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	default:
		t.Fatal("restored terminal job's done channel is open")
	}
}

// writeJournalLog writes raw framed records as a journal directory's log.
func writeJournalLog(t *testing.T, dir string, frames []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, journalLogName), frames, 0o644); err != nil {
		t.Fatal(err)
	}
}

// testSubmitRecord renders n test policies as a crosscompare submit
// record, the shape Submit would have journaled.
func testSubmitRecord(t *testing.T, n int) *submitRecord {
	t.Helper()
	names, policies := testPolicies(t, n)
	sub := &submitRecord{
		Kind:         string(KindCrossCompare),
		Schema:       "",
		Names:        names,
		CreatedNanos: time.Now().UnixNano(),
	}
	for _, p := range policies {
		sub.Policies = append(sub.Policies, rule.FormatPolicy(p))
	}
	for _, pr := range CrossPairs(n) {
		sub.Pairs = append(sub.Pairs, [2]int{pr.I, pr.J})
		sub.PairNames = append(sub.PairNames, names[pr.I]+" vs "+names[pr.J])
	}
	return sub
}

// countPairFires registers a counting no-op fault at the job pair chaos
// point, returning the counter and cleanup.
func countPairFires(t *testing.T) *atomic.Int64 {
	t.Helper()
	var fires atomic.Int64
	remove := chaos.Register(chaos.PointJobPair, func(ctx context.Context) error {
		fires.Add(1)
		return nil
	})
	t.Cleanup(remove)
	return &fires
}

// TestJournalResumeSkipsSettledPairs is the core durability property: a
// journal holding a submit and one settled pair resumes with exactly
// the unsettled pairs executed — the settled pair's journaled result is
// served, never recomputed.
func TestJournalResumeSkipsSettledPairs(t *testing.T) {
	dir := t.TempDir()
	sub := testSubmitRecord(t, 3)
	var frames []byte
	frames = appendFrame(frames, encodeRecord(&record{Type: recSubmit, Job: "resume-1", Submit: sub}))
	frames = appendFrame(frames, encodeRecord(&record{Type: recSettle, Job: "resume-1", Settle: &settleRecord{
		Pair:         0,
		Status:       string(PairOK),
		Attempts:     1,
		ElapsedNanos: int64(5 * time.Millisecond),
		Report:       &reportRecord{RawPaths: 41, PathsCompared: 41},
	}}))
	writeJournalLog(t, dir, frames)

	fires := countPairFires(t)
	st := openTestJournal(t, dir)
	rep := st.RecoveryReport()
	if rep.JobsRecovered != 1 || rep.JobsResumed != 1 || rep.PairsRestored != 1 {
		t.Fatalf("report = %+v", rep)
	}
	reg := metrics.NewRegistry()
	c := New(engine.New(engine.Config{}), Config{Workers: 2, Store: st, Metrics: reg})
	defer c.Close()
	final := waitJob(t, c, "resume-1")
	if final.State != StateCompleted || final.Progress.OK != 3 {
		t.Fatalf("resumed job = %+v", final.Progress)
	}
	// Pair 0 kept its journaled result: the marker report values prove it
	// was restored, and only the two unsettled pairs touched a worker.
	if r := final.Pairs[0].Report; r == nil || r.RawPaths != 41 || r.PathsCompared != 41 {
		t.Fatalf("pair 0 was recomputed: %+v", final.Pairs[0].Report)
	}
	if got := fires.Load(); got != 2 {
		t.Fatalf("pair executions after resume = %d, want 2", got)
	}
	if got := c.inst.recovered.Value(); got != 1 {
		t.Fatalf("fwjobs_recovered_jobs = %d", got)
	}
	if c.Recovery() == nil || c.Recovery().JobsResumed != 1 {
		t.Fatalf("coordinator recovery report = %+v", c.Recovery())
	}
}

// TestJournalCancelRecordRecovery: a cancel record makes the job
// terminal with its unsettled pairs skipped; nothing is re-enqueued.
func TestJournalCancelRecordRecovery(t *testing.T) {
	dir := t.TempDir()
	sub := testSubmitRecord(t, 3)
	now := time.Now()
	var frames []byte
	frames = appendFrame(frames, encodeRecord(&record{Type: recSubmit, Job: "cx-1", Submit: sub}))
	frames = appendFrame(frames, encodeRecord(&record{Type: recSettle, Job: "cx-1", Settle: &settleRecord{
		Pair: 1, Status: string(PairOK), Report: &reportRecord{RawPaths: 7, PathsCompared: 7},
	}}))
	frames = appendFrame(frames, encodeRecord(&record{
		Type: recCancel, Job: "cx-1", State: string(StateCanceled), AtNanos: now.UnixNano(),
	}))
	writeJournalLog(t, dir, frames)

	fires := countPairFires(t)
	st := openTestJournal(t, dir)
	if rep := st.RecoveryReport(); rep.JobsRecovered != 1 || rep.JobsResumed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	c := New(engine.New(engine.Config{}), Config{Workers: 2, Store: st})
	defer c.Close()
	snap := waitJob(t, c, "cx-1")
	if snap.State != StateCanceled {
		t.Fatalf("state = %s", snap.State)
	}
	if snap.Progress.OK != 1 || snap.Progress.Skipped != 2 || snap.Progress.Settled != 3 {
		t.Fatalf("progress = %+v", snap.Progress)
	}
	if got := snap.Finished.UnixNano(); got != now.UnixNano() {
		t.Fatalf("finished = %d, want the cancel record's %d", got, now.UnixNano())
	}
	if fires.Load() != 0 {
		t.Fatalf("canceled job executed %d pairs after restart", fires.Load())
	}
}

// TestJournalAllSettledFinalizesOnAdoption: every pair settled but the
// finalize record lost (crash in the settle→finalize window) must
// complete at adoption instead of hanging with no worker left to
// trigger finalization.
func TestJournalAllSettledFinalizesOnAdoption(t *testing.T) {
	dir := t.TempDir()
	sub := testSubmitRecord(t, 2)
	var frames []byte
	frames = appendFrame(frames, encodeRecord(&record{Type: recSubmit, Job: "fin-1", Submit: sub}))
	frames = appendFrame(frames, encodeRecord(&record{Type: recSettle, Job: "fin-1", Settle: &settleRecord{
		Pair: 0, Status: string(PairError), Err: "chaos: injected failure", Attempts: 2,
	}}))
	writeJournalLog(t, dir, frames)

	fires := countPairFires(t)
	st := openTestJournal(t, dir)
	c := New(engine.New(engine.Config{}), Config{Workers: 1, Store: st})
	defer c.Close()
	snap := waitJob(t, c, "fin-1")
	if snap.State != StateCompleted || snap.Progress.Errors != 1 {
		t.Fatalf("snap = %v %+v", snap.State, snap.Progress)
	}
	if snap.Pairs[0].Err == nil || snap.Pairs[0].Err.Error() != "chaos: injected failure" {
		t.Fatalf("restored error = %v", snap.Pairs[0].Err)
	}
	if fires.Load() != 0 {
		t.Fatalf("fully-settled job executed %d pairs", fires.Load())
	}
}

// TestJournalWriteChaosDegradesDurabilityOnly: injected journal write
// failures are counted and absorbed — the job still runs to completion
// through the in-memory path.
func TestJournalWriteChaosDegradesDurabilityOnly(t *testing.T) {
	remove := chaos.Register(chaos.PointJournalWrite, chaos.FailWith(errors.New("disk full")))
	defer remove()

	dir := t.TempDir()
	st := openTestJournal(t, dir)
	c := New(engine.New(engine.Config{}), Config{Workers: 2, Store: st})
	defer c.Close()
	names, policies := testPolicies(t, 2)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	if final.State != StateCompleted || final.Progress.OK != 1 {
		t.Fatalf("job with failing journal = %v %+v", final.State, final.Progress)
	}
	writes, _ := st.JournalErrors()
	if writes == 0 {
		t.Fatal("no journal write errors counted")
	}
}

// TestJournalCompaction: a tiny compaction threshold forces snapshot
// rewrites on every append; the reopened store must rebuild the job
// from the snapshot alone.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenJournal(dir, JournalOptions{Fsync: FsyncNever, CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := New(engine.New(engine.Config{}), Config{Workers: 2, Store: st})
	names, policies := testPolicies(t, 3)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, snap.ID)
	c.Close()

	fi, err := os.Stat(filepath.Join(dir, journalLogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("log size after compaction = %d", fi.Size())
	}
	st2 := openTestJournal(t, dir)
	defer st2.Close()
	rep := st2.RecoveryReport()
	if !rep.SnapshotLoaded || rep.JobsRecovered != 1 || rep.PairsRestored != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if _, ok := st2.Get(snap.ID); !ok {
		t.Fatal("job missing after snapshot-only recovery")
	}
}

// TestJournalDeleteRecordStopsResurrection: a retention purge's delete
// record keeps the job from coming back on replay.
func TestJournalDeleteRecordStopsResurrection(t *testing.T) {
	dir := t.TempDir()
	st := openTestJournal(t, dir)
	c := New(engine.New(engine.Config{}), Config{Workers: 1, Store: st, Retention: time.Millisecond})
	names, policies := testPolicies(t, 2)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, c, snap.ID)
	time.Sleep(5 * time.Millisecond)
	c.List() // triggers the lazy purge past retention
	if _, ok := st.Get(snap.ID); ok {
		t.Fatal("job not purged")
	}
	c.Close()

	st2 := openTestJournal(t, dir)
	defer st2.Close()
	if rep := st2.RecoveryReport(); rep.JobsRecovered != 0 {
		t.Fatalf("purged job resurrected: %+v", rep)
	}
}

// --- Corruption fixture corpus -------------------------------------

// fixtureDir is the shared corpus under the repo root, exercised here
// and seeded into FuzzJournalReplay.
var fixtureDir = filepath.Join("..", "..", "testdata", "journal")

// journalFixtures builds the corpus deterministically: a fixed base
// journal (one 3-policy crosscompare job, two settled pairs) corrupted
// four ways. Policies come from the seeded synthesizer, times are
// pinned, so -update is reproducible.
func journalFixtures(t *testing.T) map[string][]byte {
	t.Helper()
	names, policies := testPolicies(t, 3)
	sub := &submitRecord{
		Kind:         string(KindCrossCompare),
		Schema:       "five",
		Names:        names,
		Pairs:        [][2]int{{0, 1}, {0, 2}, {1, 2}},
		PairNames:    []string{"p1 vs p2", "p1 vs p3", "p2 vs p3"},
		CreatedNanos: 1700000000000000000,
	}
	for _, p := range policies {
		sub.Policies = append(sub.Policies, rule.FormatPolicy(p))
	}
	var base []byte
	base = appendFrame(base, encodeRecord(&record{Type: recSubmit, Job: "fix-1", Submit: sub}))
	base = appendFrame(base, encodeRecord(&record{Type: recSettle, Job: "fix-1", Settle: &settleRecord{
		Pair: 0, Status: string(PairOK), Attempts: 1, ElapsedNanos: 2500000,
		Report: &reportRecord{RawPaths: 9, PathsCompared: 7},
	}}))
	base = appendFrame(base, encodeRecord(&record{Type: recSettle, Job: "fix-1", Settle: &settleRecord{
		Pair: 1, Status: string(PairError), Err: "chaos: injected failure", Attempts: 3, Quarantined: true,
	}}))
	lastSettle := encodeRecord(&record{Type: recSettle, Job: "fix-1", Settle: &settleRecord{
		Pair: 2, Status: string(PairOK), Attempts: 1,
		Report: &reportRecord{RawPaths: 4, PathsCompared: 4},
	}})

	tornFrame := appendFrame(nil, lastSettle)
	torn := append(append([]byte{}, base...), tornFrame[:len(tornFrame)-5]...)

	badFrame := appendFrame(nil, lastSettle)
	badFrame[frameHeaderLen+2] ^= 0xff // flip a payload byte: CRC now lies
	badCRC := append(append([]byte{}, base...), badFrame...)
	badCRC = appendFrame(badCRC, lastSettle) // a good frame after the bad one still applies

	unknown := append([]byte{}, base...)
	unknown = appendFrame(unknown, []byte(`{"type":"wibble","job":"fix-1"}`))
	unknown = appendFrame(unknown, lastSettle)

	return map[string][]byte{
		"torn-tail":    torn,
		"bad-crc":      badCRC,
		"empty":        nil,
		"unknown-type": unknown,
	}
}

// TestJournalCorruptionFixtures replays each checked-in corrupted
// journal and pins its recovery report against the golden file. The
// fixture is copied to a temp dir first: open-time tail truncation
// must never rewrite the corpus.
func TestJournalCorruptionFixtures(t *testing.T) {
	fixtures := journalFixtures(t)
	if *updateFixtures {
		for name, frames := range fixtures {
			dir := filepath.Join(fixtureDir, name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, journalLogName), frames, 0o644); err != nil {
				t.Fatal(err)
			}
			tmp := t.TempDir()
			writeJournalLog(t, tmp, frames)
			s := openTestJournal(t, tmp)
			rep := s.RecoveryReport()
			s.Close()
			body, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "report.json"), append(body, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name := range fixtures {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join(fixtureDir, name)
			frames, err := os.ReadFile(filepath.Join(dir, journalLogName))
			if err != nil {
				t.Fatalf("missing fixture (regenerate with -update): %v", err)
			}
			goldenRaw, err := os.ReadFile(filepath.Join(dir, "report.json"))
			if err != nil {
				t.Fatalf("missing golden report (regenerate with -update): %v", err)
			}
			var want RecoveryReport
			if err := json.Unmarshal(goldenRaw, &want); err != nil {
				t.Fatal(err)
			}
			tmp := t.TempDir()
			writeJournalLog(t, tmp, frames)
			s := openTestJournal(t, tmp)
			defer s.Close()
			if got := s.RecoveryReport(); got != want {
				t.Fatalf("recovery report:\n got %+v\nwant %+v", got, want)
			}
		})
	}

	// Semantic spot checks beyond the goldens: what each corruption may
	// and may not cost.
	replay := func(name string) (*JournalStore, RecoveryReport) {
		tmp := t.TempDir()
		writeJournalLog(t, tmp, fixtures[name])
		s := openTestJournal(t, tmp)
		t.Cleanup(func() { s.Close() })
		return s, s.RecoveryReport()
	}
	if _, rep := replay("torn-tail"); rep.TornBytesTruncated == 0 || rep.PairsRestored != 2 {
		t.Fatalf("torn-tail: %+v", rep)
	}
	if _, rep := replay("bad-crc"); rep.CorruptRecordsSkipped != 1 || rep.PairsRestored != 3 {
		// The flipped frame is skipped; the good copy after it lands.
		t.Fatalf("bad-crc: %+v", rep)
	}
	if _, rep := replay("empty"); rep != (RecoveryReport{}) {
		t.Fatalf("empty: %+v", rep)
	}
	s, rep := replay("unknown-type")
	if rep.UnknownRecordsSkipped != 1 || rep.PairsRestored != 3 {
		t.Fatalf("unknown-type: %+v", rep)
	}
	if j, ok := s.Get("fix-1"); !ok || j.pairs[1].Attempts != 3 || !j.pairs[1].Quarantined {
		t.Fatalf("quarantine flags lost in replay")
	}
}

// TestJournalTornTailTruncatedOnDisk: open drops the torn bytes from
// the file itself, so the next replay starts at a clean frame boundary.
func TestJournalTornTailTruncatedOnDisk(t *testing.T) {
	fixtures := journalFixtures(t)
	dir := t.TempDir()
	writeJournalLog(t, dir, fixtures["torn-tail"])
	s := openTestJournal(t, dir)
	torn := s.RecoveryReport().TornBytesTruncated
	s.Close()
	fi, err := os.Stat(filepath.Join(dir, journalLogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(len(fixtures["torn-tail"]))-torn {
		t.Fatalf("log size %d after truncating %d torn bytes of %d", fi.Size(), torn, len(fixtures["torn-tail"]))
	}
	s2 := openTestJournal(t, dir)
	defer s2.Close()
	if rep := s2.RecoveryReport(); rep.TornBytesTruncated != 0 || rep.PairsRestored != 2 {
		t.Fatalf("second open still torn: %+v", rep)
	}
}

// FuzzJournalReplay: arbitrary journal bytes must never panic replay —
// the worst allowed outcome is a report full of skip counts.
func FuzzJournalReplay(f *testing.F) {
	sub := &submitRecord{
		Kind: string(KindCrossCompare), Schema: "five", Names: []string{"a", "b", "c"},
		Pairs: [][2]int{{0, 1}, {0, 2}, {1, 2}}, PairNames: []string{"x", "y", "z"},
	}
	for i := 0; i < 3; i++ {
		p := synth.Synthetic(synth.Config{Rules: 15, Seed: int64(i + 1)})
		sub.Policies = append(sub.Policies, rule.FormatPolicy(p))
	}
	var valid []byte
	valid = appendFrame(valid, encodeRecord(&record{Type: recSubmit, Job: "f-1", Submit: sub}))
	valid = appendFrame(valid, encodeRecord(&record{Type: recSettle, Job: "f-1", Settle: &settleRecord{Pair: 0, Status: string(PairOK)}}))
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(appendFrame(nil, []byte(`{"type":"wibble"}`)))
	f.Add(appendFrame(nil, []byte(`not json`)))
	f.Add(valid[:len(valid)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalLogName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenJournal(dir, JournalOptions{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("OpenJournal must tolerate corruption, got %v", err)
		}
		s.Close()
	})
}
