package jobs

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"diversefw/internal/chaos"
	"diversefw/internal/engine"
	"diversefw/internal/guard"
	"diversefw/internal/metrics"
)

func TestTransientErrorClassification(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
	}{
		{errors.New("chaos: injected failure"), true},
		{context.DeadlineExceeded, true},
		{guard.ErrBudget, false},
		{&guard.ErrBudgetExceeded{}, false},
	}
	for _, tc := range cases {
		if got := transientError(tc.err); got != tc.transient {
			t.Errorf("transientError(%v) = %v, want %v", tc.err, got, tc.transient)
		}
	}
}

func TestRetryDelayDeterministicAndBounded(t *testing.T) {
	base := 50 * time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		d := retryDelay(base, "job-1", 3, attempt)
		if d != retryDelay(base, "job-1", 3, attempt) {
			t.Fatalf("attempt %d: delay not deterministic", attempt)
		}
		shift := attempt - 1
		if shift > 4 {
			shift = 4
		}
		full := base << shift
		if d < full/2 || d > full {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, full/2, full)
		}
	}
	// Different pairs of the same job spread out instead of thundering
	// back together.
	if retryDelay(base, "job-1", 0, 2) == retryDelay(base, "job-1", 1, 2) &&
		retryDelay(base, "job-1", 0, 3) == retryDelay(base, "job-1", 1, 3) {
		t.Fatal("jitter did not separate pairs")
	}
}

// flakyFault fails the first n fires, then passes.
func flakyFault(n int64) (chaos.Fault, *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context) error {
		if calls.Add(1) <= n {
			return errors.New("chaos: transient blip")
		}
		return nil
	}, &calls
}

// TestRetryTransientThenSucceeds: a pair failing twice transiently with
// RetryMax 3 ends OK on its third attempt, with the retries counted.
func TestRetryTransientThenSucceeds(t *testing.T) {
	fault, calls := flakyFault(2)
	remove := chaos.Register(chaos.PointJobPair, fault)
	defer remove()

	reg := metrics.NewRegistry()
	c := New(engine.New(engine.Config{}), Config{
		Workers: 1, RetryMax: 3, RetryBase: time.Millisecond, Metrics: reg,
	})
	defer c.Close()
	names, policies := testPolicies(t, 2)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	if final.State != StateCompleted || final.Progress.OK != 1 || final.Progress.Quarantined != 0 {
		t.Fatalf("progress = %+v", final.Progress)
	}
	p := final.Pairs[0]
	if p.Status != PairOK || p.Attempts != 3 || p.Quarantined {
		t.Fatalf("pair = %+v", p)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("pair executions = %d, want 3", got)
	}
	if got := c.inst.retries.Value(); got != 2 {
		t.Fatalf("fwjobs_retries_total = %d, want 2", got)
	}
	if got := c.inst.quarantined.Value(); got != 0 {
		t.Fatalf("fwjobs_quarantined_total = %d, want 0", got)
	}
}

// TestRetryQuarantineAfterBudget: a pair that never stops failing
// transiently settles as a quarantined error after exactly RetryMax
// attempts; its sibling pairs are untouched.
func TestRetryQuarantineAfterBudget(t *testing.T) {
	var calls atomic.Int64
	remove := chaos.Register(chaos.PointJobPair, func(ctx context.Context) error {
		calls.Add(1)
		return errors.New("chaos: always down")
	})
	defer remove()

	reg := metrics.NewRegistry()
	c := New(engine.New(engine.Config{}), Config{
		Workers: 1, RetryMax: 3, RetryBase: time.Millisecond, Metrics: reg,
	})
	defer c.Close()
	names, policies := testPolicies(t, 2)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	if final.State != StateCompleted || final.Progress.Errors != 1 || final.Progress.Quarantined != 1 {
		t.Fatalf("progress = %+v", final.Progress)
	}
	p := final.Pairs[0]
	if p.Status != PairError || p.Attempts != 3 || !p.Quarantined {
		t.Fatalf("pair = %+v", p)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("pair executions = %d, want RetryMax=3", got)
	}
	if got := c.inst.quarantined.Value(); got != 1 {
		t.Fatalf("fwjobs_quarantined_total = %d, want 1", got)
	}
}

// TestPermanentErrorNeverRetries: a budget trip is the input's fault;
// it settles on the first attempt, unquarantined, even with retry
// budget available.
func TestPermanentErrorNeverRetries(t *testing.T) {
	var calls atomic.Int64
	remove := chaos.Register(chaos.PointJobPair, func(ctx context.Context) error {
		calls.Add(1)
		return &guard.ErrBudgetExceeded{}
	})
	defer remove()

	c := New(engine.New(engine.Config{}), Config{
		Workers: 1, RetryMax: 5, RetryBase: time.Millisecond,
	})
	defer c.Close()
	names, policies := testPolicies(t, 2)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	p := final.Pairs[0]
	if p.Status != PairError || p.Attempts != 1 || p.Quarantined {
		t.Fatalf("pair = %+v", p)
	}
	if final.Progress.Quarantined != 0 {
		t.Fatalf("progress = %+v", final.Progress)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("pair executions = %d, want 1 (no retry of permanent errors)", got)
	}
}

// TestRetryDisabledByDefault: the zero config keeps the old behavior —
// one attempt, plain error, nothing quarantined — so existing callers
// and scenarios see no new timing.
func TestRetryDisabledByDefault(t *testing.T) {
	var calls atomic.Int64
	remove := chaos.Register(chaos.PointJobPair, func(ctx context.Context) error {
		calls.Add(1)
		return errors.New("chaos: transient blip")
	})
	defer remove()

	c := New(engine.New(engine.Config{}), Config{Workers: 1})
	defer c.Close()
	names, policies := testPolicies(t, 2)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	p := final.Pairs[0]
	if p.Status != PairError || p.Attempts != 1 || p.Quarantined {
		t.Fatalf("pair = %+v", p)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("pair executions = %d, want 1 with retries off", got)
	}
}

// TestCancelDuringBackoffWindow: canceling a job whose pair is waiting
// out a retry backoff settles it as skipped promptly — the retry timer
// loses to the context.
func TestCancelDuringBackoffWindow(t *testing.T) {
	fault, _ := flakyFault(1 << 30)
	remove := chaos.Register(chaos.PointJobPair, fault)
	defer remove()

	c := New(engine.New(engine.Config{}), Config{
		Workers: 1, RetryMax: 10, RetryBase: time.Hour, // park the retry far in the future
	})
	defer c.Close()
	names, policies := testPolicies(t, 2)
	snap, err := c.Submit(Spec{Kind: KindCrossCompare, Names: names, Policies: policies})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail into the backoff window.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := c.Get(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if s.Pairs[0].Attempts >= 1 && s.Pairs[0].Status == PairPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pair never entered backoff: %+v", s.Pairs[0])
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, c, snap.ID)
	if final.State != StateCanceled || final.Progress.Skipped != 1 {
		t.Fatalf("final = %v %+v", final.State, final.Progress)
	}
}
