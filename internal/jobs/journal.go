package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"diversefw/internal/chaos"
	"diversefw/internal/engine"
)

// FsyncPolicy is when the journal fsyncs its log file.
type FsyncPolicy string

const (
	// FsyncAlways syncs after every record: no acknowledged lifecycle
	// event is ever lost, at the cost of one fsync per settle.
	FsyncAlways FsyncPolicy = "always"
	// FsyncBatch syncs on a short timer (and at compaction/close): a
	// crash loses at most the last flush interval of records — replay
	// then re-runs those pairs, which is safe, just not free.
	FsyncBatch FsyncPolicy = "batch"
	// FsyncNever leaves syncing to the OS: fastest, and a power loss can
	// lose anything the page cache still held. Process crashes (the
	// common case) lose nothing — the writes are already in the kernel.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy parses the -jobs-fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncBatch, FsyncNever:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("jobs: invalid fsync policy %q: use always, batch, or never", s)
}

// JournalOptions configures a JournalStore. The zero value is usable:
// batch fsync, 4 MiB compaction threshold, 100ms flush interval.
type JournalOptions struct {
	// Fsync is the log durability policy (default batch).
	Fsync FsyncPolicy
	// CompactBytes is the log size that triggers snapshot+compaction
	// (default 4 MiB).
	CompactBytes int64
	// BatchInterval is the flush cadence under FsyncBatch (default
	// 100ms — the usual group-commit territory: each fsync costs real
	// kernel CPU that on a small host comes straight out of the worker
	// budget, and a tenth of a second bounds the worst-case re-run
	// window to a sliver of any real job's runtime).
	BatchInterval time.Duration
}

// RecoveryReport summarizes one journal replay: what was recovered,
// what was resumed, and what the replay had to tolerate. Rendered in
// the /healthz "recovery" block and pinned by the corruption-fixture
// golden tests.
type RecoveryReport struct {
	// JobsRecovered counts jobs rebuilt from the journal, terminal ones
	// included.
	JobsRecovered int `json:"jobsRecovered"`
	// JobsResumed counts recovered jobs that were non-terminal at crash
	// time and were re-enqueued.
	JobsResumed int `json:"jobsResumed"`
	// PairsRestored counts settled pairs restored without recomputation.
	PairsRestored int `json:"pairsRestored"`
	// RecordsApplied counts journal records replayed successfully.
	RecordsApplied int `json:"recordsApplied"`
	// CorruptRecordsSkipped counts frames with a bad checksum or an
	// unusable payload, skipped without aborting replay.
	CorruptRecordsSkipped int `json:"corruptRecordsSkipped"`
	// UnknownRecordsSkipped counts well-formed frames whose record type
	// this build does not know (a newer writer's log).
	UnknownRecordsSkipped int `json:"unknownRecordsSkipped"`
	// TornBytesTruncated is the size of the incomplete tail dropped from
	// the log (a write torn by process death).
	TornBytesTruncated int64 `json:"tornBytesTruncated"`
	// JobsDropped counts jobs whose journal state could not be
	// materialized (unparseable policy text, unknown schema).
	JobsDropped int `json:"jobsDropped"`
	// SnapshotLoaded reports whether a compaction snapshot seeded the
	// replay.
	SnapshotLoaded bool `json:"snapshotLoaded"`
}

const (
	journalLogName  = "journal.log"
	journalSnapName = "snapshot.json"
)

// JournalStore is the durable Store: the in-memory map the coordinator
// reads through, plus an append-only journal of lifecycle records and a
// compaction snapshot, so a restarted process rebuilds every job and
// resumes the unfinished ones.
//
// Journal failures degrade durability, never availability: if an append
// or fsync fails (disk full, injected chaos), the record is counted and
// dropped, the in-memory shadow stays correct, and the next compaction
// rewrites the snapshot from the shadow — the job layer keeps serving.
type JournalStore struct {
	mem  *memStore
	dir  string
	opts JournalOptions

	// jmu serializes shadow mutation, log appends, and compaction. It is
	// taken while a Job's mutex is held (settle → append), so nothing
	// under jmu may take a Job mutex — compaction reads the shadow, not
	// the live jobs, for exactly this reason.
	jmu     sync.Mutex
	f       *os.File
	size    int64
	buf     []byte // FsyncBatch: frames awaiting the flusher's write
	bufRecs int    // records in buf, for write-error accounting
	dirty   bool
	sh      *shadow
	closed  bool

	// fmu serializes the file operations that move the log's write
	// offset: the flusher's deferred batch write (which runs without
	// jmu, so settle appends never wait behind a disk write) against
	// compaction's truncate+rewind. Lock order: jmu then fmu, never the
	// reverse.
	fmu sync.Mutex

	flushStop chan struct{}
	flushDone chan struct{}

	writeErrs atomic.Int64
	syncErrs  atomic.Int64

	report    RecoveryReport
	recovered []*Job
}

// OpenJournal opens (or creates) a journal directory, replays its
// snapshot and log, truncates any torn tail, and returns a store ready
// to hand to jobs.Config.Store. The coordinator adopts the recovered
// jobs when it is constructed; the report stays available via
// Coordinator.Recovery.
func OpenJournal(dir string, opts JournalOptions) (*JournalStore, error) {
	if opts.Fsync == "" {
		opts.Fsync = FsyncBatch
	}
	if _, err := ParseFsyncPolicy(string(opts.Fsync)); err != nil {
		return nil, err
	}
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = 4 << 20
	}
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	s := &JournalStore{
		mem:  &memStore{byID: make(map[string]*Job)},
		dir:  dir,
		opts: opts,
		sh:   newShadow(),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalLogName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: journal log: %w", err)
	}
	// Drop the torn tail on disk too, so the next process's replay
	// starts from a clean frame boundary even if this one never
	// compacts.
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: journal log: %w", err)
	}
	valid := st.Size() - s.report.TornBytesTruncated
	if valid < 0 {
		valid = 0
	}
	if valid != st.Size() {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("jobs: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: journal log: %w", err)
	}
	s.f = f
	s.size = valid
	for _, st := range s.sh.states() {
		j, err := materialize(st)
		if err != nil {
			s.report.JobsDropped++
			continue
		}
		j.hashes = make([]string, len(j.spec.Policies))
		for i, p := range j.spec.Policies {
			j.hashes[i] = engine.PolicyHash(p)
		}
		s.report.JobsRecovered++
		s.report.PairsRestored += j.settled
		if !j.state.Terminal() {
			s.report.JobsResumed++
		}
		s.mem.Put(j)
		s.recovered = append(s.recovered, j)
	}
	if opts.Fsync == FsyncBatch {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flusher()
	}
	return s, nil
}

// replay loads the snapshot (when present) and folds the log into the
// shadow, recording what it had to tolerate.
func (s *JournalStore) replay() error {
	snapPath := filepath.Join(s.dir, journalSnapName)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap snapshotFile
		if json.Unmarshal(data, &snap) == nil && snap.Version == 1 {
			for _, st := range snap.Jobs {
				if st == nil || st.ID == "" {
					continue
				}
				if _, ok := s.sh.jobs[st.ID]; ok {
					continue
				}
				s.sh.jobs[st.ID] = st
				s.sh.order = append(s.sh.order, st.ID)
			}
			s.report.SnapshotLoaded = true
		} else {
			// A half-written snapshot only survives a crash inside
			// compaction before the atomic rename; treat it as absent.
			s.report.CorruptRecordsSkipped++
		}
	}
	data, err := os.ReadFile(filepath.Join(s.dir, journalLogName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobs: journal log: %w", err)
	}
	tornAt := walkFrames(data, func(payload []byte, crcOK bool) {
		if !crcOK {
			s.report.CorruptRecordsSkipped++
			return
		}
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			s.report.CorruptRecordsSkipped++
			return
		}
		switch err := s.sh.apply(&rec); {
		case err == nil:
			s.report.RecordsApplied++
		case errors.Is(err, errUnknownRecord):
			s.report.UnknownRecordsSkipped++
		default:
			s.report.CorruptRecordsSkipped++
		}
	})
	s.report.TornBytesTruncated = int64(len(data) - tornAt)
	return nil
}

// flusher is the FsyncBatch loop: swap the buffered frames out under
// jmu (a pointer exchange), then write and fsync them with no locks
// held. A worker's settle append in batch mode therefore never enters
// the kernel and never waits behind a disk operation — holding jmu
// across the write or the fsync, or even letting appends share the log
// inode's in-kernel lock with an in-flight fsync, each measured as
// double-digit percent overhead on the crosscompare benchmark.
func (s *JournalStore) flusher() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.jmu.Lock()
			doSync := s.dirty && !s.closed
			var buf []byte
			var recs int
			if doSync {
				// Clear before syncing: appends racing the fsync re-mark
				// dirty, refill a fresh buffer, and are covered by the
				// next tick.
				s.dirty = false
				buf, recs = s.buf, s.bufRecs
				s.buf, s.bufRecs = nil, 0
			}
			s.jmu.Unlock()
			if doSync {
				s.writeFrames(buf, recs)
				s.sync()
			}
		case <-s.flushStop:
			return
		}
	}
}

// writeFrames writes a swapped-out batch buffer to the log. A failed
// write drops the whole buffer and counts every record in it — the same
// degrade-durability-not-availability contract as a failed inline
// append. fmu keeps the write offset out from under a concurrent
// compaction; a batch the flusher swapped out before a compaction
// landed is then appended to the fresh log, where replay treats its
// records as the idempotent no-ops they are (the snapshot already
// includes them).
func (s *JournalStore) writeFrames(buf []byte, recs int) {
	if len(buf) == 0 {
		return
	}
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if _, err := s.f.Write(buf); err != nil {
		s.writeErrs.Add(int64(recs))
	}
}

// Close flushes and closes the log. The coordinator calls it from
// Coordinator.Close after the workers have drained.
func (s *JournalStore) Close() error {
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.writeFrames(s.buf, s.bufRecs)
	s.buf, s.bufRecs = nil, 0
	if s.dirty {
		s.sync()
	}
	return s.f.Close()
}

// append journals one record: fold it into the shadow, frame it, write,
// sync per policy, compact past the threshold. Journal write failures
// (including injected chaos at PointJournalWrite/PointJournalFsync) are
// counted and absorbed — see the type comment.
func (s *JournalStore) append(rec *record) {
	payload := encodeRecord(rec)
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if err := s.sh.apply(rec); err != nil {
		// Records are built from live jobs; an unappliable one is a bug.
		panic("jobs: journal append: " + err.Error())
	}
	if s.closed {
		return
	}
	if err := chaos.Fire(context.Background(), chaos.PointJournalWrite); err != nil {
		s.writeErrs.Add(1)
		return
	}
	if s.opts.Fsync == FsyncBatch {
		// Frame straight into the buffer instead of writing: the flusher
		// issues both the write and the fsync, so the append path stays
		// syscall-free (see flusher). The loss window is unchanged —
		// batch mode already promises only "at most the last flush
		// interval".
		n := len(s.buf)
		s.buf = appendFrame(s.buf, payload)
		s.bufRecs++
		s.size += int64(len(s.buf) - n)
		s.dirty = true
	} else {
		frame := appendFrame(nil, payload)
		if _, err := s.f.Write(frame); err != nil {
			s.writeErrs.Add(1)
			return
		}
		s.size += int64(len(frame))
		if s.opts.Fsync == FsyncAlways {
			s.sync()
		}
	}
	if s.size >= s.opts.CompactBytes {
		s.compactLocked()
	}
}

// sync fsyncs the log. Safe with or without jmu: it touches only the
// fd (os.File is safe for concurrent use) and atomic error counters.
func (s *JournalStore) sync() {
	if err := chaos.Fire(context.Background(), chaos.PointJournalFsync); err != nil {
		s.syncErrs.Add(1)
		return
	}
	if err := s.f.Sync(); err != nil {
		s.syncErrs.Add(1)
	}
}

// compactLocked writes the shadow as a snapshot and resets the log.
// Crash safety: the snapshot lands via write-tmp/fsync/rename before
// the log is truncated, and shadow application is idempotent, so a
// crash between the rename and the truncate replays the old log over
// the new snapshot as no-ops.
func (s *JournalStore) compactLocked() {
	body, err := json.Marshal(snapshotFile{Version: 1, Jobs: s.sh.states()})
	if err != nil {
		return
	}
	tmp := filepath.Join(s.dir, journalSnapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		s.writeErrs.Add(1)
		return
	}
	_, werr := f.Write(body)
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil || serr != nil || cerr != nil {
		s.writeErrs.Add(1)
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, journalSnapName)); err != nil {
		s.writeErrs.Add(1)
		os.Remove(tmp)
		return
	}
	// The snapshot was built from the shadow, which already includes any
	// buffered batch-mode records — discard them rather than writing
	// pre-snapshot frames into the fresh log.
	s.buf = s.buf[:0]
	s.bufRecs = 0
	s.fmu.Lock()
	terr := s.f.Truncate(0)
	var seekErr error
	if terr == nil {
		_, seekErr = s.f.Seek(0, io.SeekStart)
	}
	s.fmu.Unlock()
	if terr != nil || seekErr != nil {
		s.writeErrs.Add(1)
		return
	}
	s.size = 0
	if s.opts.Fsync != FsyncNever {
		s.sync()
		s.dirty = false
	}
}

// Store interface: the in-memory map serves reads; Put and Delete also
// journal.

func (s *JournalStore) Put(j *Job) {
	s.mem.Put(j)
	// j is not yet shared with workers at Put time (Submit publishes it
	// after), so its fields are safe to read without its mutex.
	s.append(&record{Type: recSubmit, Job: j.id, Submit: specRecord(j.spec, j.created)})
}

func (s *JournalStore) Get(id string) (*Job, bool) { return s.mem.Get(id) }

func (s *JournalStore) Delete(id string) {
	if _, ok := s.mem.Get(id); !ok {
		return
	}
	s.mem.Delete(id)
	s.append(&record{Type: recDelete, Job: id})
}

func (s *JournalStore) List() []*Job { return s.mem.List() }

func (s *JournalStore) Len() int { return s.mem.Len() }

// durableStore is what the coordinator type-asserts its Store against
// to emit lifecycle records and adopt recovered jobs.
type durableStore interface {
	Store
	appendSettle(j *Job, k int)
	appendFinal(j *Job, state State, at time.Time)
	takeRecovered() []*Job
	recoveryReport() *RecoveryReport
}

// appendSettle journals pair k's outcome. Called from settle with j.mu
// held, so it reads the pair directly and must not touch other jobs.
func (s *JournalStore) appendSettle(j *Job, k int) {
	pr := &j.pairs[k]
	sr := &settleRecord{
		Pair:         k,
		Status:       string(pr.Status),
		Attempts:     pr.Attempts,
		Quarantined:  pr.Quarantined,
		ElapsedNanos: int64(pr.Elapsed),
	}
	if pr.Err != nil {
		sr.Err = pr.Err.Error()
	}
	if pr.Report != nil {
		if schema, err := journalSchema(j.spec.SchemaName); err == nil {
			sr.Report = encodeReport(schema, pr.Report)
		}
	}
	s.append(&record{Type: recSettle, Job: j.id, Settle: sr})
}

// appendFinal journals a job reaching a terminal state: a cancel record
// when canceled (it implies skipping the unsettled pairs), a finalize
// record when every pair settled on its own.
func (s *JournalStore) appendFinal(j *Job, state State, at time.Time) {
	typ := recFinalize
	if state == StateCanceled {
		typ = recCancel
	}
	s.append(&record{Type: typ, Job: j.id, State: string(state), AtNanos: at.UnixNano()})
}

// takeRecovered hands the replayed jobs to the coordinator, once.
func (s *JournalStore) takeRecovered() []*Job {
	out := s.recovered
	s.recovered = nil
	return out
}

func (s *JournalStore) recoveryReport() *RecoveryReport {
	r := s.report
	return &r
}

// RecoveryReport returns what this store's open-time replay recovered
// and tolerated.
func (s *JournalStore) RecoveryReport() RecoveryReport { return s.report }

// JournalErrors returns how many journal writes and fsyncs have been
// dropped since open (durability degradation, not job failures).
func (s *JournalStore) JournalErrors() (writes, syncs int64) {
	return s.writeErrs.Load(), s.syncErrs.Load()
}

// SettleRef identifies one settle record in a journal log: which job,
// which pair. Exposed for tests and the scenario runner, which assert
// that no pair is ever settled twice across a crash+restart.
type SettleRef struct {
	Job  string
	Pair int
}

// ScanSettles reads a journal directory's log (not its snapshot) and
// returns every settle record's reference in order, bad frames skipped.
func ScanSettles(dir string) ([]SettleRef, error) {
	data, err := os.ReadFile(filepath.Join(dir, journalLogName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var refs []SettleRef
	walkFrames(data, func(payload []byte, crcOK bool) {
		if !crcOK {
			return
		}
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			return
		}
		if rec.Type == recSettle && rec.Settle != nil {
			refs = append(refs, SettleRef{Job: rec.Job, Pair: rec.Settle.Pair})
		}
	})
	return refs, nil
}
