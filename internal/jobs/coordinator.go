package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"diversefw/internal/chaos"
	"diversefw/internal/compare"
	"diversefw/internal/engine"
	"diversefw/internal/metrics"
	"diversefw/internal/trace"
)

// ErrClosed reports a Submit after Close.
var ErrClosed = errors.New("jobs: coordinator closed")

// Recorder receives one observation per settled pair for objective
// tracking. It mirrors the slo.Store Record signature without importing
// the package, so the coordinator stays decoupled from SLO policy.
type Recorder interface {
	Record(target string, latency time.Duration, status int, shed bool)
}

// Config configures a Coordinator. The zero value is usable: 4
// workers, 15 minute retention, 256 stored jobs, in-memory store,
// hash sharding, no instrumentation.
type Config struct {
	// Workers is the number of pair-comparison workers (default 4).
	Workers int
	// Retention is how long a finished job stays pollable before it is
	// purged (default 15m).
	Retention time.Duration
	// MaxJobs caps stored jobs, finished-but-retained included
	// (default 256). Submit returns ErrTooManyJobs at the cap.
	MaxJobs int
	// Metrics, when non-nil, receives the fwjobs_* instrument family.
	Metrics *metrics.Registry
	// Traces, when non-nil, receives one trace per finished job.
	Traces *trace.Buffer
	// Store overrides the in-memory job store.
	Store Store
	// Sharder overrides the default hash sharder.
	Sharder Sharder
	// SLO, when non-nil, receives one observation per settled pair under
	// target "job:<kind>" — OK pairs as status 200, errored pairs as 422;
	// skipped pairs are not recorded (a cancel is not a failure).
	SLO Recorder
	// RetryMax caps how many times one pair runs before a transiently
	// failing pair settles as a quarantined error (default 1: retries
	// off, every error is final on its first attempt). Permanent errors
	// — budget trips, incomplete policies — never retry.
	RetryMax int
	// RetryBase is the base backoff before a pair's second attempt
	// (default 50ms); see retryDelay for the growth and jitter.
	RetryBase time.Duration
}

// Coordinator owns the worker pool and the job store. Safe for
// concurrent use.
type Coordinator struct {
	eng     *engine.Engine
	cfg     Config
	store   Store
	sharder Sharder
	// durable is non-nil when the store journals job lifecycle records
	// (a JournalStore); the coordinator then emits settle/terminal
	// records and adopts the store's recovered jobs at construction.
	durable durableStore

	baseCtx context.Context
	stop    context.CancelFunc

	startOnce sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup
	queues    []chan task

	inst *instruments
}

// task is one pair of one job, routed to a worker queue.
type task struct {
	j *Job
	k int
}

// Job is one submitted unit of work. All exported access goes through
// Coordinator methods and Snapshot; the struct itself is internal to
// the package and mutated under its mutex.
type Job struct {
	id      string
	spec    Spec
	hashes  []string
	created time.Time

	ctx      context.Context
	cancelFn context.CancelFunc
	tr       *trace.Trace

	mu          sync.Mutex
	state       State
	started     time.Time
	finished    time.Time
	pairs       []PairResult
	settled     int
	ok          int
	errs        int
	skipped     int
	quarantined int
	done        chan struct{}
}

// New returns a coordinator executing pairs against eng. Call Close to
// stop the workers and cancel every live job.
func New(eng *engine.Engine, cfg Config) *Coordinator {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 15 * time.Minute
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 256
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Sharder == nil {
		cfg.Sharder = HashSharder{}
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 1
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	ctx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		eng:     eng,
		cfg:     cfg,
		store:   cfg.Store,
		sharder: cfg.Sharder,
		baseCtx: ctx,
		stop:    stop,
	}
	if cfg.Metrics != nil {
		c.inst = newInstruments(cfg.Metrics)
	}
	if ds, ok := cfg.Store.(durableStore); ok {
		c.durable = ds
		c.adoptRecovered(ds.takeRecovered())
	}
	return c
}

// Recovery returns the durable store's replay report, or nil when the
// store is not journaled. Rendered by /healthz.
func (c *Coordinator) Recovery() *RecoveryReport {
	if c.durable == nil {
		return nil
	}
	return c.durable.recoveryReport()
}

// adoptRecovered attaches the runtime half (context, trace, done
// channel) to jobs a JournalStore replayed, and re-enqueues the
// unsettled pairs of the non-terminal ones. Settled pairs keep their
// journaled results — the whole point of the journal is that a restart
// never recomputes them — and the engine's content-addressed compile
// cache makes the resumed pairs' recompiles cheap.
func (c *Coordinator) adoptRecovered(recovered []*Job) {
	resumed := 0
	for _, j := range recovered {
		// A job whose pairs all settled before the crash but whose
		// finalize record was lost completes here rather than hanging
		// forever (no worker would ever settle its "last" pair again).
		if !j.state.Terminal() && j.settled == len(j.pairs) {
			j.state = StateCompleted
			j.finished = time.Now()
		}
		if j.state.Terminal() {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			j.ctx, j.cancelFn = ctx, cancel
			_, j.tr = trace.New(ctx, "job", j.id)
			j.tr.Finish()
			j.done = make(chan struct{})
			close(j.done)
			continue
		}
		resumed++
		jctx, cancel := context.WithCancel(c.baseCtx)
		jctx, tr := trace.New(jctx, "job", j.id)
		tr.Root().SetAttr("job.kind", string(j.spec.Kind))
		tr.Root().SetAttr("job.recovered", true)
		j.ctx, j.cancelFn, j.tr = jctx, cancel, tr
		j.done = make(chan struct{})
		if c.inst != nil {
			c.inst.active.Inc()
		}
	}
	if c.inst != nil {
		c.inst.recovered.Set(int64(len(recovered)))
		c.inst.stored.Set(int64(c.store.Len()))
	}
	if resumed == 0 {
		return
	}
	c.start()
	for _, j := range recovered {
		j := j
		if j.state.Terminal() {
			continue
		}
		type route struct{ k, w int }
		var pending []route
		for k := range j.pairs {
			if j.pairs[k].Status.Settled() {
				continue
			}
			p := j.pairs[k].Pair
			pending = append(pending, route{
				k: k,
				w: c.sharder.Shard(j.hashes[p.I], j.hashes[p.J], c.cfg.Workers),
			})
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for _, r := range pending {
				select {
				case c.queues[r.w] <- task{j: j, k: r.k}:
				case <-j.ctx.Done():
					return
				}
			}
		}()
	}
}

// Workers returns the size of the worker pool.
func (c *Coordinator) Workers() int { return c.cfg.Workers }

// start spins up the worker pool on first use, so a server that never
// receives a job never pays for idle goroutines.
func (c *Coordinator) start() {
	c.startOnce.Do(func() {
		c.queues = make([]chan task, c.cfg.Workers)
		for w := range c.queues {
			q := make(chan task, 64)
			c.queues[w] = q
			c.wg.Add(1)
			go c.worker(q)
		}
	})
}

// Submit validates and enqueues a job, returning its snapshot (state
// queued, possibly already running by the time the caller reads it).
func (c *Coordinator) Submit(spec Spec) (Snapshot, error) {
	if err := c.baseCtx.Err(); err != nil {
		return Snapshot{}, ErrClosed
	}
	if err := validateSpec(&spec); err != nil {
		return Snapshot{}, err
	}
	c.purgeExpired()
	if c.store.Len() >= c.cfg.MaxJobs {
		return Snapshot{}, ErrTooManyJobs
	}
	c.start()

	// Content hashes drive sharding; computing them at submit also
	// means a malformed policy representation fails loudly here, not on
	// a worker.
	hashes := make([]string, len(spec.Policies))
	for i, p := range spec.Policies {
		hashes[i] = engine.PolicyHash(p)
	}

	id := trace.NewID()
	jctx, cancel := context.WithCancel(c.baseCtx)
	jctx, tr := trace.New(jctx, "job", id)
	tr.Root().SetAttr("job.kind", string(spec.Kind))
	tr.Root().SetAttr("job.policies", len(spec.Policies))
	tr.Root().SetAttr("job.pairs", len(spec.Pairs))

	j := &Job{
		id:       id,
		spec:     spec,
		hashes:   hashes,
		created:  time.Now(),
		ctx:      jctx,
		cancelFn: cancel,
		tr:       tr,
		state:    StateQueued,
		pairs:    make([]PairResult, len(spec.Pairs)),
		done:     make(chan struct{}),
	}
	for k, p := range spec.Pairs {
		j.pairs[k] = PairResult{Pair: p, Name: spec.PairNames[k], Status: PairPending}
	}
	c.store.Put(j)
	if c.inst != nil {
		c.inst.submitted.Inc()
		c.inst.active.Inc()
		c.inst.stored.Set(int64(c.store.Len()))
	}

	// The feeder routes pairs to their shard. It blocks when a worker's
	// queue is full — backpressure, not buffering — and bails out the
	// moment the job or the coordinator dies.
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for k, p := range spec.Pairs {
			w := c.sharder.Shard(hashes[p.I], hashes[p.J], c.cfg.Workers)
			select {
			case c.queues[w] <- task{j: j, k: k}:
			case <-j.ctx.Done():
				return
			}
		}
	}()
	return c.snapshot(j), nil
}

// validateSpec normalizes and checks a spec in place: crosscompare
// derives its pairs, batchdiff checks the listed ones, and PairNames is
// filled so every pair has a display name.
func validateSpec(spec *Spec) error {
	n := len(spec.Policies)
	if len(spec.Names) != n {
		return fmt.Errorf("jobs: %d policies but %d names", n, len(spec.Names))
	}
	switch spec.Kind {
	case KindCrossCompare:
		if n < 2 {
			return errors.New("jobs: crosscompare needs at least 2 policies")
		}
		spec.Pairs = CrossPairs(n)
		spec.PairNames = nil
	case KindBatchDiff:
		if len(spec.Pairs) == 0 {
			return errors.New("jobs: batchdiff needs at least 1 pair")
		}
		for _, p := range spec.Pairs {
			if p.I < 0 || p.I >= n || p.J < 0 || p.J >= n || p.I == p.J {
				return fmt.Errorf("jobs: pair (%d, %d) out of range for %d policies", p.I, p.J, n)
			}
		}
		if len(spec.PairNames) != 0 && len(spec.PairNames) != len(spec.Pairs) {
			return fmt.Errorf("jobs: %d pairs but %d pair names", len(spec.Pairs), len(spec.PairNames))
		}
	default:
		return fmt.Errorf("jobs: unknown kind %q", spec.Kind)
	}
	if spec.PairNames == nil {
		spec.PairNames = make([]string, len(spec.Pairs))
	}
	for k, p := range spec.Pairs {
		if spec.PairNames[k] == "" {
			spec.PairNames[k] = spec.Names[p.I] + " vs " + spec.Names[p.J]
		}
	}
	return nil
}

// Get returns a job's current snapshot.
func (c *Coordinator) Get(id string) (Snapshot, error) {
	c.purgeExpired()
	j, ok := c.store.Get(id)
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return c.snapshot(j), nil
}

// List returns all stored jobs, newest first.
func (c *Coordinator) List() []Snapshot {
	c.purgeExpired()
	js := c.store.List()
	snaps := make([]Snapshot, 0, len(js))
	for _, j := range js {
		snaps = append(snaps, c.snapshot(j))
	}
	sortSnapshotsByAge(snaps)
	return snaps
}

// Done returns a channel closed when the job reaches a terminal state.
func (c *Coordinator) Done(id string) (<-chan struct{}, error) {
	j, ok := c.store.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	return j.done, nil
}

// Cancel stops a job: its context is canceled (reaching in-flight
// pairs mid-comparison), unfinished pairs settle as skipped, finished
// pairs keep their results. Canceling a terminal job is a no-op that
// returns its snapshot.
func (c *Coordinator) Cancel(id string) (Snapshot, error) {
	c.purgeExpired()
	j, ok := c.store.Get(id)
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	j.cancelFn()
	j.mu.Lock()
	if !j.state.Terminal() {
		c.skipUnsettledLocked(j)
		c.finalizeLocked(j, StateCanceled)
	}
	j.mu.Unlock()
	return c.snapshot(j), nil
}

// Close cancels every live job, stops the workers, and waits for them.
// Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		c.stop()
		for _, j := range c.store.List() {
			j.cancelFn()
			j.mu.Lock()
			if !j.state.Terminal() {
				c.skipUnsettledLocked(j)
				c.finalizeLocked(j, StateCanceled)
			}
			j.mu.Unlock()
		}
		c.wg.Wait()
		// The coordinator owns its store's lifecycle: a JournalStore
		// flushes and closes its log once no worker can settle again.
		if cl, ok := c.store.(io.Closer); ok {
			cl.Close()
		}
	})
}

// worker drains one shard's queue until the coordinator closes.
func (c *Coordinator) worker(q chan task) {
	defer c.wg.Done()
	for {
		select {
		case t := <-q:
			c.runPair(t.j, t.k)
		case <-c.baseCtx.Done():
			return
		}
	}
}

// runPair executes one pair: claim it, fire the chaos point, compile
// both sides through the engine's content-addressed cache, diff, and
// settle. Each Compile/Diff flight gets its own work budget from the
// engine (the job context carries none), so one pair tripping its
// budget settles as a per-pair error while its siblings proceed.
func (c *Coordinator) runPair(j *Job, k int) {
	j.mu.Lock()
	if j.state.Terminal() || j.pairs[k].Status != PairPending {
		j.mu.Unlock()
		return
	}
	j.pairs[k].Status = PairRunning
	j.pairs[k].Attempts++
	attempt := j.pairs[k].Attempts
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = time.Now()
	}
	j.mu.Unlock()

	p := j.pairs[k].Pair
	start := time.Now()
	r, err := c.comparePair(j, p)
	elapsed := time.Since(start)

	status := PairOK
	quarantined := false
	if err != nil {
		status = PairError
		if j.ctx.Err() != nil {
			// The job died while this pair was in flight; the pair was
			// (or is about to be) settled as skipped by Cancel/Close.
			c.settle(j, k, PairSkipped, nil, nil, elapsed, false)
			return
		}
		if transientError(err) {
			if attempt < c.cfg.RetryMax {
				// A moment-in-time failure with retry budget left: back
				// off and requeue instead of settling. The attempt still
				// leaves a span so the trace shows the whole history.
				if c.inst != nil {
					c.inst.retries.Inc()
				}
				j.tr.Root().AddCompleted("job.pair", start, elapsed,
					trace.A("pair", j.pairs[k].Name),
					trace.A("status", "retry"),
					trace.A("attempt", attempt))
				c.scheduleRetry(j, k, attempt)
				return
			}
			// Out of budget: quarantine the poison pair as an error
			// entry — its siblings (and the job) proceed normally.
			quarantined = c.cfg.RetryMax > 1
		}
	}
	// The span goes on the trace BEFORE the settle: settling the last
	// pair finalizes the job, which snapshots the trace into the buffer
	// — a span added after that is lost from the retained record.
	j.tr.Root().AddCompleted("job.pair", start, elapsed,
		trace.A("pair", j.pairs[k].Name),
		trace.A("status", string(status)))
	c.settle(j, k, status, r, err, elapsed, quarantined)
	if c.inst != nil {
		c.inst.pairDuration.ObserveExemplar(elapsed.Seconds(), j.tr.ID())
	}
	if c.cfg.SLO != nil {
		code := 200
		if status == PairError {
			code = 422
		}
		c.cfg.SLO.Record("job:"+string(j.spec.Kind), elapsed, code, false)
	}
}

func (c *Coordinator) comparePair(j *Job, p Pair) (r *compare.Report, err error) {
	if err := chaos.Fire(j.ctx, chaos.PointJobPair); err != nil {
		return nil, err
	}
	ca, _, err := c.eng.Compile(j.ctx, j.spec.Policies[p.I])
	if err != nil {
		return nil, fmt.Errorf("policy %q: %w", j.spec.Names[p.I], err)
	}
	cb, _, err := c.eng.Compile(j.ctx, j.spec.Policies[p.J])
	if err != nil {
		return nil, fmt.Errorf("policy %q: %w", j.spec.Names[p.J], err)
	}
	rep, _, err := c.eng.Diff(j.ctx, ca, cb)
	return rep, err
}

// settle records one pair's terminal status. Idempotent per pair: the
// first settle wins, late settles (a canceled pair finishing after
// Cancel marked it skipped) are no-ops. Settling the last pair
// finalizes the job.
func (c *Coordinator) settle(j *Job, k int, status PairStatus, r *compare.Report, err error, elapsed time.Duration, quarantined bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.pairs[k].Status.Settled() {
		return
	}
	j.pairs[k].Status = status
	j.pairs[k].Report = r
	j.pairs[k].Err = err
	j.pairs[k].Elapsed = elapsed
	j.pairs[k].Quarantined = quarantined
	j.settled++
	switch status {
	case PairOK:
		j.ok++
	case PairError:
		j.errs++
		if quarantined {
			j.quarantined++
		}
	case PairSkipped:
		j.skipped++
	}
	if c.inst != nil {
		c.inst.pairs.With(string(status)).Inc()
		if quarantined {
			c.inst.quarantined.Inc()
		}
	}
	if c.durable != nil {
		c.durable.appendSettle(j, k)
	}
	if j.settled == len(j.pairs) && !j.state.Terminal() {
		c.finalizeLocked(j, StateCompleted)
	}
}

// scheduleRetry returns a running pair to pending and re-feeds it to
// its shard after a capped, jittered backoff. Cancellation at any point
// simply wins: a canceled job settles the pair as skipped, and both the
// timer and the queue send give up on the job's context.
func (c *Coordinator) scheduleRetry(j *Job, k, attempt int) {
	j.mu.Lock()
	if j.state.Terminal() || j.pairs[k].Status != PairRunning {
		j.mu.Unlock()
		return
	}
	j.pairs[k].Status = PairPending
	j.mu.Unlock()
	p := j.pairs[k].Pair
	w := c.sharder.Shard(j.hashes[p.I], j.hashes[p.J], c.cfg.Workers)
	delay := retryDelay(c.cfg.RetryBase, j.id, k, attempt)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-j.ctx.Done():
			return
		}
		select {
		case c.queues[w] <- task{j: j, k: k}:
		case <-j.ctx.Done():
		}
	}()
}

// skipUnsettledLocked settles every pending/running pair as skipped.
// Caller holds j.mu.
func (c *Coordinator) skipUnsettledLocked(j *Job) {
	for k := range j.pairs {
		if j.pairs[k].Status.Settled() {
			continue
		}
		j.pairs[k].Status = PairSkipped
		j.settled++
		j.skipped++
		if c.inst != nil {
			c.inst.pairs.With(string(PairSkipped)).Inc()
		}
	}
}

// finalizeLocked moves a job into a terminal state. Caller holds j.mu
// and has checked the job is not already terminal.
func (c *Coordinator) finalizeLocked(j *Job, state State) {
	j.state = state
	j.finished = time.Now()
	j.cancelFn()
	close(j.done)
	if c.durable != nil {
		c.durable.appendFinal(j, state, j.finished)
	}
	j.tr.Root().SetAttr("job.state", string(state))
	j.tr.Root().SetAttr("job.ok", j.ok)
	j.tr.Root().SetAttr("job.errors", j.errs)
	j.tr.Root().SetAttr("job.skipped", j.skipped)
	j.tr.Root().SetAttr("job.quarantined", j.quarantined)
	j.tr.Finish()
	if c.cfg.Traces != nil {
		c.cfg.Traces.Observe(j.tr)
	}
	if c.inst != nil {
		c.inst.active.Dec()
		c.inst.finished.With(string(state)).Inc()
	}
}

// purgeExpired drops terminal jobs past their retention. Lazy: it runs
// on Submit/Get/List/Cancel instead of a janitor goroutine, so an idle
// coordinator holds no timers and no goroutines.
func (c *Coordinator) purgeExpired() {
	cutoff := time.Now().Add(-c.cfg.Retention)
	removed := false
	for _, j := range c.store.List() {
		j.mu.Lock()
		expired := j.state.Terminal() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if expired {
			c.store.Delete(j.id)
			removed = true
		}
	}
	if removed && c.inst != nil {
		c.inst.stored.Set(int64(c.store.Len()))
	}
}

// snapshot copies a job's current state under its lock.
func (c *Coordinator) snapshot(j *Job) Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:         j.id,
		Kind:       j.spec.Kind,
		State:      j.state,
		SchemaName: j.spec.SchemaName,
		Names:      append([]string(nil), j.spec.Names...),
		TraceID:    j.tr.ID(),
		Progress: Progress{
			Total:       len(j.pairs),
			Settled:     j.settled,
			OK:          j.ok,
			Errors:      j.errs,
			Skipped:     j.skipped,
			Quarantined: j.quarantined,
		},
		Pairs:    append([]PairResult(nil), j.pairs...),
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
	}
	return s
}

// instruments is the fwjobs_* family.
type instruments struct {
	submitted    *metrics.Counter
	finished     *metrics.CounterVec
	active       *metrics.Gauge
	stored       *metrics.Gauge
	pairs        *metrics.CounterVec
	pairDuration *metrics.Histogram
	retries      *metrics.Counter
	quarantined  *metrics.Counter
	recovered    *metrics.Gauge
}

func newInstruments(reg *metrics.Registry) *instruments {
	return &instruments{
		submitted: reg.NewCounter("fwjobs_submitted_total",
			"Async jobs accepted."),
		finished: reg.NewCounterVec("fwjobs_finished_total",
			"Async jobs reaching a terminal state, by state.", "state"),
		active: reg.NewGauge("fwjobs_active",
			"Async jobs not yet terminal."),
		stored: reg.NewGauge("fwjobs_stored",
			"Async jobs held in the store, finished-but-retained included."),
		pairs: reg.NewCounterVec("fwjobs_pairs_total",
			"Job pair comparisons settled, by status.", "status"),
		pairDuration: reg.NewHistogram("fwjobs_pair_duration_seconds",
			"Wall time of one job pair comparison.", nil),
		retries: reg.NewCounter("fwjobs_retries_total",
			"Transiently failed pair attempts sent back for a retry."),
		quarantined: reg.NewCounter("fwjobs_quarantined_total",
			"Pairs quarantined after exhausting their retry budget."),
		recovered: reg.NewGauge("fwjobs_recovered_jobs",
			"Jobs recovered from the journal at the last startup."),
	}
}
