// Package jobs runs cross-comparison work asynchronously. A submitted
// job names a set of policies and a set of comparison pairs; a bounded
// worker pool grinds through the pairs while the client polls for
// status, progress, and partial results, and may cancel at any time.
//
// Why a job API at all: an N-policy cross-comparison is N·(N-1)/2 FDD
// diffs, each potentially exponential in the worst case (PAPER.md
// Sections 3-4). Holding an HTTP request open for that is hostile to
// both sides — the client can't see progress and the server can't
// bound the connection's lifetime. A job decouples the two: submission
// is cheap and immediate, execution is bounded by the coordinator's
// worker pool, and every pair that finishes is visible to the next
// poll even if a sibling pair later trips its budget.
//
// Pairs are sharded across workers by the content hashes of their two
// policies (see Sharder), so the pairs that share a policy cluster on
// the same worker and walk the engine's content-addressed compile
// cache in a cache-friendly order. Compile-once is not the sharding's
// job — the engine's singleflight already guarantees each distinct
// policy compiles exactly once — sharding keeps the pair stream's
// cache locality high and the per-worker work deterministic.
package jobs

import (
	"errors"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"diversefw/internal/compare"
	"diversefw/internal/rule"
)

// Kind names what a job computes.
type Kind string

const (
	// KindCrossCompare compares every pair among the job's policies.
	KindCrossCompare Kind = "crosscompare"
	// KindBatchDiff compares exactly the pairs the submitter listed.
	KindBatchDiff Kind = "batchdiff"
)

// State is a job's lifecycle phase. Terminal states are StateCompleted
// and StateCanceled; a completed job may still hold per-pair errors —
// those are results, not a job failure.
type State string

const (
	// StateQueued: accepted, no pair has started yet.
	StateQueued State = "queued"
	// StateRunning: at least one pair has started.
	StateRunning State = "running"
	// StateCompleted: every pair settled (ok or error).
	StateCompleted State = "completed"
	// StateCanceled: the client or server shutdown stopped the job;
	// unfinished pairs are skipped, finished pairs keep their results.
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool { return s == StateCompleted || s == StateCanceled }

// PairStatus is one pair's lifecycle phase.
type PairStatus string

const (
	// PairPending: not yet picked up by a worker.
	PairPending PairStatus = "pending"
	// PairRunning: a worker is comparing it now.
	PairRunning PairStatus = "running"
	// PairOK: compared; the report is available.
	PairOK PairStatus = "ok"
	// PairError: the comparison failed (budget trip, compile error,
	// injected fault). The error is available; siblings are unaffected.
	PairError PairStatus = "error"
	// PairSkipped: the job ended before this pair ran.
	PairSkipped PairStatus = "skipped"
)

// Settled reports whether the pair has reached a final status.
func (s PairStatus) Settled() bool {
	return s == PairOK || s == PairError || s == PairSkipped
}

// Pair indexes two policies in a job's policy list (I < J for
// crosscompare; batchdiff pairs are taken as given).
type Pair struct {
	I int
	J int
}

// Spec describes one job at submission. Policies must be parsed and
// schema-checked by the caller; Names parallels Policies. For
// KindBatchDiff the caller lists Pairs (and optionally PairNames,
// parallel to Pairs); for KindCrossCompare both are derived.
type Spec struct {
	Kind       Kind
	SchemaName string
	Names      []string
	Policies   []*rule.Policy
	Pairs      []Pair
	PairNames  []string
}

// PairResult is one pair's current outcome. Exactly one of Report and
// Err is set once Status is ok or error. Attempts counts executions
// including the settling one; Quarantined marks a pair that kept
// failing transiently until the retry budget ran out and was isolated
// as an error entry rather than being retried forever or failing its
// siblings.
type PairResult struct {
	Pair        Pair
	Name        string
	Status      PairStatus
	Report      *compare.Report
	Err         error
	Elapsed     time.Duration
	Attempts    int
	Quarantined bool
}

// Progress counts a job's pairs by outcome. Every field is monotonic
// non-decreasing over a job's lifetime, so a polling client can assert
// it never moves backwards.
type Progress struct {
	Total   int `json:"total"`
	Settled int `json:"settled"`
	OK      int `json:"ok"`
	Errors  int `json:"errors"`
	Skipped int `json:"skipped"`
	// Quarantined counts the subset of Errors that exhausted their
	// retry budget on transient failures.
	Quarantined int `json:"quarantined"`
}

// Snapshot is a point-in-time copy of a job, safe to render after the
// job keeps mutating.
type Snapshot struct {
	ID         string
	Kind       Kind
	State      State
	SchemaName string
	Names      []string
	TraceID    string
	Progress   Progress
	Pairs      []PairResult
	Created    time.Time
	Started    time.Time // zero until the first pair starts
	Finished   time.Time // zero until terminal
}

// ErrNotFound reports an unknown or already-purged job ID.
var ErrNotFound = errors.New("jobs: job not found")

// ErrTooManyJobs reports that the store is at its MaxJobs cap.
var ErrTooManyJobs = errors.New("jobs: too many jobs")

// Store holds jobs by ID. The coordinator mutates jobs in place after
// Put, so a Store holds references, not copies; implementations only
// need to make the map operations safe. The interface exists so the
// in-memory store can be swapped (e.g. for a bounded-disk spill or a
// shared store in a multi-process deployment) without touching the
// coordinator.
type Store interface {
	// Put inserts a job. The ID is already set and unique.
	Put(j *Job)
	// Get returns the job with the given ID, or false.
	Get(id string) (*Job, bool)
	// Delete removes the job with the given ID (no-op when absent).
	Delete(id string)
	// List returns all jobs in insertion order.
	List() []*Job
	// Len returns the number of stored jobs.
	Len() int
}

// memStore is the default Store: a mutex-guarded map plus insertion
// order.
type memStore struct {
	mu    sync.Mutex
	byID  map[string]*Job
	order []string
}

// NewMemStore returns the default in-memory Store.
func NewMemStore() Store {
	return &memStore{byID: make(map[string]*Job)}
}

func (s *memStore) Put(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[j.id] = j
	s.order = append(s.order, j.id)
}

func (s *memStore) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

func (s *memStore) Delete(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return
	}
	delete(s.byID, id)
	for i, v := range s.order {
		if v == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *memStore) List() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

func (s *memStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Sharder assigns a comparison pair to one of the coordinator's
// workers, given the content hashes of the pair's two policies. The
// interface exists so the placement policy can be swapped (e.g. a
// load-aware sharder) without touching the coordinator; implementations
// must be deterministic in (hashes, workers) and return a value in
// [0, workers).
type Sharder interface {
	Shard(hashA, hashB string, workers int) int
}

// HashSharder is the default Sharder: FNV-1a over the sorted pair of
// content hashes. Sorting makes placement symmetric — (A, B) and
// (B, A) land on the same worker — and hashing the pair rather than
// one side spreads a hub policy's N-1 pairs across workers instead of
// serializing them all behind one.
type HashSharder struct{}

func (HashSharder) Shard(hashA, hashB string, workers int) int {
	if workers <= 1 {
		return 0
	}
	a, b := hashA, hashB
	if b < a {
		a, b = b, a
	}
	h := fnv.New32a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	return int(h.Sum32() % uint32(workers))
}

// CrossPairs enumerates the N·(N-1)/2 pairs among n policies in
// deterministic (i, j) order, i < j — the same order the synchronous
// /v1/crosscompare endpoint reports.
func CrossPairs(n int) []Pair {
	pairs := make([]Pair, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, Pair{I: i, J: j})
		}
	}
	return pairs
}

// sortSnapshotsByAge orders job snapshots newest-first for listings.
func sortSnapshotsByAge(snaps []Snapshot) {
	sort.Slice(snaps, func(i, j int) bool {
		return snaps[i].Created.After(snaps[j].Created)
	})
}
