package backtoback

import (
	"testing"

	"diversefw/internal/compare"
	"diversefw/internal/field"
	"diversefw/internal/interval"
	"diversefw/internal/paper"
	"diversefw/internal/rule"
)

func TestRunValidation(t *testing.T) {
	t.Parallel()
	s := field.MustSchema(field.Field{Name: "x", Domain: interval.MustNew(0, 9), Kind: field.KindInt})
	other := rule.MustPolicy(s, []rule.Rule{rule.CatchAll(s, rule.Accept)})
	if _, err := Run(paper.TeamA(), other, 10, 1, Uniform); err == nil {
		t.Fatal("schema mismatch should fail")
	}
	if _, err := Run(paper.TeamA(), paper.TeamB(), 10, 1, Strategy(9)); err == nil {
		t.Fatal("unknown strategy should fail")
	}
}

// TestUniformSamplingMissesSliverRegions is the paper's incompleteness
// argument in numbers: all three Table 3 regions require D to equal one
// specific address out of 2^32, so uniform testing with a realistic
// budget finds none of them.
func TestUniformSamplingMissesSliverRegions(t *testing.T) {
	t.Parallel()
	pa, pb := paper.TeamA(), paper.TeamB()
	report, err := compare.Diff(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pa, pb, 50000, 7, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	found, total := Coverage(report, res)
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
	if found != 0 {
		// Astronomically unlikely (P < 50000 * 2^-32 per region).
		t.Fatalf("uniform sampling hit %d sliver regions", found)
	}
}

// TestBiasedSamplingFindsSome: rule-aware test generation does hit the
// regions — but the witnesses are point samples, not region descriptions,
// and completeness is still not guaranteed.
func TestBiasedSamplingFindsSome(t *testing.T) {
	t.Parallel()
	pa, pb := paper.TeamA(), paper.TeamB()
	report, err := compare.Diff(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pa, pb, 5000, 7, Biased)
	if err != nil {
		t.Fatal(err)
	}
	found, total := Coverage(report, res)
	if found == 0 {
		t.Fatal("biased sampling should find at least one region")
	}
	if found > total {
		t.Fatalf("found %d > total %d", found, total)
	}
	// Every witness must be a genuine disagreement inside some region.
	for _, w := range res.Witnesses {
		inRegion := false
		for _, d := range report.Discrepancies {
			if d.Pred.Matches(w) {
				inRegion = true
				break
			}
		}
		if !inRegion {
			t.Fatalf("witness %v outside every exact region", w)
		}
	}
}

func TestEquivalentPoliciesProduceNoWitnesses(t *testing.T) {
	t.Parallel()
	a := paper.TeamA()
	res, err := Run(a, a.Clone(), 2000, 3, Biased)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Witnesses) != 0 {
		t.Fatalf("equivalent policies produced %d witnesses", len(res.Witnesses))
	}
}

func TestStrategyString(t *testing.T) {
	t.Parallel()
	if Uniform.String() != "uniform" || Biased.String() != "biased" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() != "strategy#9" {
		t.Fatal("unknown strategy name wrong")
	}
}
