// Package backtoback implements back-to-back testing of firewall
// versions — the N-version-programming companion technique (the paper's
// reference [25], Vouk) that Section 9 contrasts diverse design with:
// execute the versions on a suite of test packets and report every input
// where they disagree.
//
// The paper's point, which this package makes measurable: back-to-back
// testing is NOT guaranteed to find all functional discrepancies — a
// discrepancy region can easily be a 2^-32 sliver of the packet space —
// whereas the FDD comparison finds every region exactly. Coverage scores
// a test run against the exact report.
package backtoback

import (
	"fmt"

	"diversefw/internal/compare"
	"diversefw/internal/packet"
	"diversefw/internal/rule"
)

// Strategy selects how test packets are generated.
type Strategy int

const (
	// Uniform draws packets uniformly from the packet space.
	Uniform Strategy = iota + 1
	// Biased draws packets inside randomly chosen rules of either policy
	// (a much stronger suite, comparable to coverage-guided testing).
	Biased
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Biased:
		return "biased"
	default:
		return fmt.Sprintf("strategy#%d", int(s))
	}
}

// Result is the outcome of one back-to-back run.
type Result struct {
	Tests     int
	Witnesses []rule.Packet // inputs where the versions disagreed
}

// Run executes n test packets against both policies and collects every
// disagreement witness.
func Run(pa, pb *rule.Policy, n int, seed int64, strategy Strategy) (*Result, error) {
	if !pa.Schema.Equal(pb.Schema) {
		return nil, fmt.Errorf("backtoback: schemas differ")
	}
	sm := packet.NewSampler(pa.Schema, seed)
	res := &Result{Tests: n}
	for i := 0; i < n; i++ {
		var pkt rule.Packet
		switch strategy {
		case Uniform:
			pkt = sm.Uniform()
		case Biased:
			pkt = sm.BiasedPair(pa, pb)
		default:
			return nil, fmt.Errorf("backtoback: unknown strategy %d", int(strategy))
		}
		if !packet.Agree(pa, pb, pkt) {
			res.Witnesses = append(res.Witnesses, pkt)
		}
	}
	return res, nil
}

// Coverage scores a run against the exact discrepancy report: how many of
// the report's regions contain at least one witness. found <= total
// always; found < total is the paper's incompleteness argument in numbers.
func Coverage(report *compare.Report, res *Result) (found, total int) {
	total = len(report.Discrepancies)
	for _, d := range report.Discrepancies {
		for _, w := range res.Witnesses {
			if d.Pred.Matches(w) {
				found++
				break
			}
		}
	}
	return found, total
}
