package query

import (
	"testing"

	"diversefw/internal/fdd"
	"diversefw/internal/interval"
	"diversefw/internal/packet"
	"diversefw/internal/paper"
	"diversefw/internal/rule"
)

func teamBFDD(t *testing.T) *fdd.FDD {
	t.Helper()
	f, err := fdd.Construct(paper.TeamB())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestQueryMailServerPorts asks Team B's firewall: which destination
// ports are accepted for inbound traffic to the mail server? Expected:
// only port 25 (and only for TCP, but the port projection is {25}).
func TestQueryMailServerPorts(t *testing.T) {
	t.Parallel()
	f := teamBFDD(t)
	s := paper.Schema()
	where := rule.FullPredicate(s)
	where[paper.FieldI] = interval.SetOf(0, 0)
	where[paper.FieldD] = interval.SetOf(paper.Gamma, paper.Gamma)
	got, err := Run(f, Query{Select: paper.FieldN, Where: where, Decision: rule.Accept})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(interval.SetOf(25, 25)) {
		t.Fatalf("accepted ports to the mail server = %v, want {25}", got)
	}
}

// TestQueryMaliciousSources asks: which sources are accepted inbound by
// Team B? Everything except the malicious domain (Team B discards it
// first).
func TestQueryMaliciousSources(t *testing.T) {
	t.Parallel()
	f := teamBFDD(t)
	s := paper.Schema()
	where := rule.FullPredicate(s)
	where[paper.FieldI] = interval.SetOf(0, 0)
	got, err := Run(f, Query{Select: paper.FieldS, Where: where, Decision: rule.Accept})
	if err != nil {
		t.Fatal(err)
	}
	notMal := s.FullSet(paper.FieldS).Subtract(interval.SetOf(paper.Alpha, paper.Beta))
	if !got.Equal(notMal) {
		t.Fatalf("accepted sources = %v, want complement of the malicious domain", got)
	}
}

// TestQueryAgainstOracle cross-checks query answers against brute-force
// membership: v is in the answer iff some sampled packet with that value
// satisfies the condition and gets the decision.
func TestQueryAgainstOracle(t *testing.T) {
	t.Parallel()
	p := paper.TeamA()
	f, err := fdd.Construct(p)
	if err != nil {
		t.Fatal(err)
	}
	s := paper.Schema()
	where := rule.FullPredicate(s)
	where[paper.FieldI] = interval.SetOf(0, 0)
	where[paper.FieldD] = interval.SetOf(paper.Gamma, paper.Gamma)
	ports, err := Run(f, Query{Select: paper.FieldN, Where: where, Decision: rule.Discard})
	if err != nil {
		t.Fatal(err)
	}
	// For Team A, inbound to the mail server is discarded only when the
	// source is malicious and the port is not 25 — so the discarded-port
	// projection is every port but... port 25 is accepted by rule 1
	// regardless of source; other ports from malicious sources are
	// discarded. Projection: all ports except 25.
	want := s.FullSet(paper.FieldN).Subtract(interval.SetOf(25, 25))
	if !ports.Equal(want) {
		t.Fatalf("discarded ports = %v, want %v", ports, want)
	}

	// Spot-check membership with the oracle.
	sm := packet.NewSampler(s, 5)
	for i := 0; i < 2000; i++ {
		pkt := sm.Biased(p)
		pkt[paper.FieldI] = 0
		pkt[paper.FieldD] = paper.Gamma
		d, _, _ := p.Decide(pkt)
		if d == rule.Discard && !ports.Contains(pkt[paper.FieldN]) {
			t.Fatalf("port %d discarded for %v but missing from projection", pkt[paper.FieldN], pkt)
		}
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	f := teamBFDD(t)
	s := paper.Schema()
	if _, err := Run(f, Query{Select: -1, Where: rule.FullPredicate(s), Decision: rule.Accept}); err == nil {
		t.Fatal("bad select should fail")
	}
	if _, err := Run(f, Query{Select: 0, Where: rule.Predicate{}, Decision: rule.Accept}); err == nil {
		t.Fatal("bad arity should fail")
	}
	if _, err := Run(f, Query{Select: 0, Where: rule.FullPredicate(s)}); err == nil {
		t.Fatal("bad decision should fail")
	}
}

func TestRunPolicy(t *testing.T) {
	t.Parallel()
	s := paper.Schema()
	where := rule.FullPredicate(s)
	got, err := RunPolicy(paper.TeamB(), Query{Select: paper.FieldI, Where: where, Decision: rule.Accept})
	if err != nil {
		t.Fatal(err)
	}
	// Both interfaces see some accepted traffic.
	if !got.Equal(s.FullSet(paper.FieldI)) {
		t.Fatalf("interfaces with accepted traffic = %v", got)
	}
}

// TestVerifySpecProperties encodes the requirement specification of
// Section 2 as properties and checks the agreed firewall against them.
func TestVerifySpecProperties(t *testing.T) {
	t.Parallel()
	agreed, err := fdd.Construct(paper.AgreedFirewall())
	if err != nil {
		t.Fatal(err)
	}
	s := paper.Schema()

	// Property 1: nothing from the malicious domain is accepted inbound.
	pred := rule.FullPredicate(s)
	pred[paper.FieldI] = interval.SetOf(0, 0)
	pred[paper.FieldS] = interval.SetOf(paper.Alpha, paper.Beta)
	if w, err := Verify(agreed, pred, rule.Discard); err != nil || w != nil {
		t.Fatalf("malicious traffic property violated: %+v, %v", w, err)
	}

	// Property 2: clean-source e-mail to the server is accepted.
	pred = rule.FullPredicate(s)
	pred[paper.FieldI] = interval.SetOf(0, 0)
	pred[paper.FieldS] = s.FullSet(paper.FieldS).Subtract(interval.SetOf(paper.Alpha, paper.Beta))
	pred[paper.FieldD] = interval.SetOf(paper.Gamma, paper.Gamma)
	pred[paper.FieldN] = interval.SetOf(25, 25)
	if w, err := Verify(agreed, pred, rule.Accept); err != nil || w != nil {
		t.Fatalf("mail property violated: %+v, %v", w, err)
	}

	// A deliberately false property returns a genuine witness.
	pred = rule.FullPredicate(s)
	w, err := Verify(agreed, pred, rule.Accept)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("not every packet is accepted; expected a witness")
	}
	got, _ := agreed.Decide(w.Packet)
	if got != w.Decision || got == rule.Accept {
		t.Fatalf("witness is not genuine: %v decides %v", w.Packet, got)
	}
}

// TestVerifyCatchesTeamAsBug: Team A accepts malicious e-mail — the
// property check each team could have run before the comparison phase.
func TestVerifyCatchesTeamAsBug(t *testing.T) {
	t.Parallel()
	s := paper.Schema()
	pred := rule.FullPredicate(s)
	pred[paper.FieldI] = interval.SetOf(0, 0)
	pred[paper.FieldS] = interval.SetOf(paper.Alpha, paper.Beta)
	w, err := VerifyPolicy(paper.TeamA(), pred, rule.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("Team A accepts some malicious packets; expected a witness")
	}
	if w.Packet[paper.FieldD] != paper.Gamma || w.Packet[paper.FieldN] != 25 {
		t.Fatalf("witness should be malicious e-mail to the server, got %v", w.Packet)
	}
}

func TestParse(t *testing.T) {
	t.Parallel()
	s := paper.Schema()
	q, err := Parse(s, "select N where I in 0 && D in 192.168.0.1 decision accept")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != paper.FieldN || q.Decision != rule.Accept {
		t.Fatalf("parsed query = %+v", q)
	}
	if !q.Where[paper.FieldD].Equal(interval.SetOf(paper.Gamma, paper.Gamma)) {
		t.Fatalf("where D = %v", q.Where[paper.FieldD])
	}

	// Without a where clause.
	q, err = Parse(s, "select S decision discard")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != paper.FieldS || !q.Where[paper.FieldI].Equal(s.FullSet(paper.FieldI)) {
		t.Fatalf("parsed query = %+v", q)
	}

	for _, bad := range []string{
		"N where I in 0 decision accept", // no select
		"select N where I in 0",          // no decision
		"select bogus decision accept",   // unknown field
		"select N decision fly",          // unknown decision
		"select N where Z in 0 decision accept",
	} {
		if _, err := Parse(s, bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestParsedQueryEndToEnd runs a parsed textual query.
func TestParsedQueryEndToEnd(t *testing.T) {
	t.Parallel()
	s := paper.Schema()
	q, err := Parse(s, "select N where I in 0 && D in 192.168.0.1 decision accept")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(teamBFDD(t), q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(interval.SetOf(25, 25)) {
		t.Fatalf("got %v, want {25}", got)
	}
}
