// Package query implements firewall queries — the SQL-like analysis the
// paper's reference [20] ("Firewall Queries", Liu, Gouda, Ma & Ngu)
// builds on FDDs and that Section 1.4 positions as design-phase tooling
// complementary to diverse design: each team can interrogate its own
// policy ("which hosts can reach the mail server?", "is anything from the
// malicious domain accepted?") before cross comparison.
//
// A query has the form
//
//	SELECT F_i FROM f WHERE F_1 ∈ S_1 ∧ ... ∧ F_d ∈ S_d AND decision = dec
//
// and returns the set of values of field F_i carried by packets that
// satisfy the condition and receive the decision. Evaluation walks the
// policy's FDD once, intersecting edge labels with the query condition —
// exact, like everything else in this repository.
package query

import (
	"fmt"
	"strings"

	"diversefw/internal/fdd"
	"diversefw/internal/field"
	"diversefw/internal/interval"
	"diversefw/internal/rule"
)

// Query is a firewall query.
type Query struct {
	// Select is the index of the field whose values are collected.
	Select int
	// Where restricts the packets considered; use rule.FullPredicate for
	// no restriction, or narrow individual fields.
	Where rule.Predicate
	// Decision filters on the firewall's decision for the packet.
	Decision rule.Decision
}

// Run evaluates the query against the FDD and returns the exact set of
// values of the selected field over all matching packets.
func Run(f *fdd.FDD, q Query) (interval.Set, error) {
	if q.Select < 0 || q.Select >= f.Schema.NumFields() {
		return interval.Set{}, fmt.Errorf("query: select index %d out of range", q.Select)
	}
	if len(q.Where) != f.Schema.NumFields() {
		return interval.Set{}, fmt.Errorf("query: condition has %d conjuncts, schema has %d fields",
			len(q.Where), f.Schema.NumFields())
	}
	if q.Decision <= 0 {
		return interval.Set{}, fmt.Errorf("query: invalid decision %d", int(q.Decision))
	}
	var result interval.Set
	// walk carries the current value set of the selected field along the
	// path (the intersection of the query condition with the path's
	// constraint on that field).
	var walk func(n *fdd.Node, selected interval.Set) bool
	walk = func(n *fdd.Node, selected interval.Set) bool {
		if n.IsTerminal() {
			if n.Decision == q.Decision {
				result = result.Union(selected)
				return true
			}
			return false
		}
		hit := false
		for _, e := range n.Edges {
			feasible := e.Label.Intersect(q.Where[n.Field])
			if feasible.Empty() {
				continue // no packet satisfying the condition takes this edge
			}
			childSelected := selected
			if n.Field == q.Select {
				childSelected = feasible
			}
			if walk(e.To, childSelected) {
				hit = true
			}
		}
		return hit
	}
	walk(f.Root, q.Where[q.Select])
	return result, nil
}

// RunPolicy is Run on a rule policy: the FDD is constructed internally.
func RunPolicy(p *rule.Policy, q Query) (interval.Set, error) {
	f, err := fdd.Construct(p)
	if err != nil {
		return interval.Set{}, err
	}
	return Run(f, q)
}

// Witness is a packet demonstrating a property violation.
type Witness struct {
	Packet   rule.Packet
	Decision rule.Decision
}

// Verify checks the property "every packet matching pred gets decision
// want". It returns nil if the property holds, or a counterexample packet
// otherwise. This is the guarded-command style spec check each team can
// run against its design before the comparison phase.
func Verify(f *fdd.FDD, pred rule.Predicate, want rule.Decision) (*Witness, error) {
	if len(pred) != f.Schema.NumFields() {
		return nil, fmt.Errorf("query: predicate has %d conjuncts, schema has %d fields",
			len(pred), f.Schema.NumFields())
	}
	// Walk the diagram, keeping one representative value per field.
	witness := make(rule.Packet, f.Schema.NumFields())
	for i, s := range pred {
		v, ok := s.Min()
		if !ok {
			return nil, fmt.Errorf("query: field %s condition is empty", f.Schema.Field(i).Name)
		}
		witness[i] = v
	}
	var walk func(n *fdd.Node, w rule.Packet) *Witness
	walk = func(n *fdd.Node, w rule.Packet) *Witness {
		if n.IsTerminal() {
			if n.Decision != want {
				out := make(rule.Packet, len(w))
				copy(out, w)
				return &Witness{Packet: out, Decision: n.Decision}
			}
			return nil
		}
		for _, e := range n.Edges {
			feasible := e.Label.Intersect(pred[n.Field])
			if feasible.Empty() {
				continue
			}
			v, _ := feasible.Min()
			saved := w[n.Field]
			w[n.Field] = v
			if bad := walk(e.To, w); bad != nil {
				return bad
			}
			w[n.Field] = saved
		}
		return nil
	}
	return walk(f.Root, witness), nil
}

// VerifyPolicy is Verify on a rule policy.
func VerifyPolicy(p *rule.Policy, pred rule.Predicate, want rule.Decision) (*Witness, error) {
	f, err := fdd.Construct(p)
	if err != nil {
		return nil, err
	}
	return Verify(f, pred, want)
}

// Parse parses the textual query form
//
//	select <field> [where <conjuncts>] decision <dec>
//
// where <conjuncts> uses the rule text syntax ("src in 10.0.0.0/8 &&
// dport in 25"); omitting the where clause means all packets.
func Parse(schema *field.Schema, text string) (Query, error) {
	lower := strings.ToLower(text)
	if !strings.HasPrefix(lower, "select ") {
		return Query{}, fmt.Errorf("query: must start with 'select'")
	}
	rest := strings.TrimSpace(text[len("select "):])
	wherePos := strings.Index(strings.ToLower(rest), " where ")
	decPos := strings.LastIndex(strings.ToLower(rest), " decision ")
	if decPos < 0 {
		return Query{}, fmt.Errorf("query: missing 'decision'")
	}
	fieldName := strings.TrimSpace(rest[:decPos])
	whereText := "any"
	if wherePos >= 0 && wherePos < decPos {
		fieldName = strings.TrimSpace(rest[:wherePos])
		whereText = strings.TrimSpace(rest[wherePos+len(" where ") : decPos])
	}
	decText := strings.TrimSpace(rest[decPos+len(" decision "):])

	sel := schema.IndexOf(fieldName)
	if sel < 0 {
		return Query{}, fmt.Errorf("query: unknown field %q", fieldName)
	}
	dec, err := rule.ParseDecision(decText)
	if err != nil {
		return Query{}, err
	}
	// The where clause is exactly a rule predicate; reuse the rule parser.
	cond, err := rule.ParseRule(schema, whereText+" -> accept")
	if err != nil {
		return Query{}, err
	}
	return Query{Select: sel, Where: cond.Pred, Decision: dec}, nil
}
