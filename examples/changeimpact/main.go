// Change impact: what actually changes when an administrator edits a
// firewall (Section 1.3).
//
// The paper's motivating error class: a new rule is added to the top of
// the policy and silently shadows rules below it. Here an administrator
// of the example gateway decides to "block all UDP" and inserts the rule
// first — unintentionally cutting off UDP e-mail to the mail server. The
// impact analysis reports exactly the traffic whose decision changed and
// attributes each region to the rules responsible.
//
// Run with: go run ./examples/changeimpact
package main

import (
	"fmt"
	"log"
	"os"

	"diversefw/internal/impact"
	"diversefw/internal/interval"
	"diversefw/internal/paper"
	"diversefw/internal/rule"
	"diversefw/internal/textio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("changeimpact: ")

	before := paper.AgreedFirewall()
	fmt.Println("Firewall before the change:")
	if err := textio.WritePolicyTable(os.Stdout, before); err != nil {
		log.Fatal(err)
	}

	// The intended change: "block all UDP". The administrator inserts it
	// at the top — the paper's dominant error pattern.
	schema := before.Schema
	blockUDP := rule.Rule{
		Pred: rule.Predicate{
			schema.FullSet(0), schema.FullSet(1), schema.FullSet(2),
			schema.FullSet(3), interval.SetOf(paper.UDP, paper.UDP),
		},
		Decision: rule.Discard,
	}
	im, err := impact.AnalyzeEdits(before, []impact.Edit{
		{Kind: impact.InsertRule, Index: 0, Rule: blockUDP},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nChange: insert \"P in udp -> discard\" at the top.")
	fmt.Println("\nImpact analysis (before vs after):")
	if err := textio.WriteImpactReport(os.Stdout, im); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nNote the collateral damage: clean-source UDP e-mail to the mail")
	fmt.Println("server (192.168.0.1, port 25) now flips from accept to discard.")
	fmt.Println("Inserted below the mail rule instead, the same change is surgical:")

	im2, err := impact.AnalyzeEdits(before, []impact.Edit{
		{Kind: impact.InsertRule, Index: 2, Rule: blockUDP},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := textio.WriteImpactReport(os.Stdout, im2); err != nil {
		log.Fatal(err)
	}
}
