// Stateful audit: diverse design applied to connection-tracking firewalls
// plus query-based specification checks.
//
// Two teams write the new-traffic policy of a stateful gateway ("allow
// established; then: inbound TCP mail to the server, DNS out, deny the
// rest"). The Gouda-Liu stateful model reduces comparing the two stateful
// firewalls to comparing their stateless sections over a schema extended
// with the connection tag — so the ordinary pipeline finds the
// discrepancies, each labeled new-vs-established. Firewall queries then
// audit the agreed design against the specification.
//
// Run with: go run ./examples/statefulaudit
package main

import (
	"fmt"
	"log"
	"os"

	"diversefw/internal/field"
	"diversefw/internal/interval"
	"diversefw/internal/query"
	"diversefw/internal/rule"
	"diversefw/internal/stateful"
	"diversefw/internal/textio"
)

const (
	mailServer = uint64(0xC0A80001) // 192.168.0.1
	dnsServer  = uint64(0x08080808) // 8.8.8.8
)

// newTrafficPolicy builds a five-tuple policy from (dst, dport, proto,
// decision) service entries plus a default.
func servicePolicy(s *field.Schema, entries [][4]uint64, defDecision rule.Decision) *rule.Policy {
	rules := make([]rule.Rule, 0, len(entries)+1)
	for _, e := range entries {
		pred := rule.FullPredicate(s)
		pred[1] = interval.SetOf(e[0], e[0])
		pred[3] = interval.SetOf(e[1], e[1])
		pred[4] = interval.SetOf(e[2], e[2])
		rules = append(rules, rule.Rule{Pred: pred, Decision: rule.Decision(e[3])})
	}
	rules = append(rules, rule.CatchAll(s, defDecision))
	return rule.MustPolicy(s, rules)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("statefulaudit: ")
	s := field.IPv4FiveTuple()

	// Team A: mail (tcp/25) in, DNS (udp/53) to the resolver.
	teamA := servicePolicy(s, [][4]uint64{
		{mailServer, 25, 6, uint64(rule.Accept)},
		{dnsServer, 53, 17, uint64(rule.Accept)},
	}, rule.Discard)

	// Team B: same intent, but forgot DNS and logs discarded traffic.
	teamB := servicePolicy(s, [][4]uint64{
		{mailServer, 25, 6, uint64(rule.Accept)},
	}, rule.DiscardLog)

	statelessA, err := stateful.TrackingPolicy(teamA)
	if err != nil {
		log.Fatal(err)
	}
	statelessB, err := stateful.TrackingPolicy(teamB)
	if err != nil {
		log.Fatal(err)
	}
	fwA, err := stateful.New(statelessA)
	if err != nil {
		log.Fatal(err)
	}
	fwB, err := stateful.New(statelessB)
	if err != nil {
		log.Fatal(err)
	}

	report, err := stateful.Diff(fwA, fwB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discrepancies between the two stateful designs (%d):\n", len(report.Discrepancies))
	if err := textio.WriteDiscrepancyTable(os.Stdout, statelessA.Schema, report.Discrepancies, "Team A", "Team B"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(the 'state' column shows every disagreement concerns new traffic;")
	fmt.Println("both teams accept established connections)")

	// Query-based audit of Team A's design (the [20] substrate): which
	// destination ports accept *new* inbound traffic?
	ext := statelessA.Schema
	where := rule.FullPredicate(ext)
	where[ext.IndexOf("state")] = interval.SetOf(stateful.TagNew, stateful.TagNew)
	ports, err := query.RunPolicy(statelessA, query.Query{
		Select:   ext.IndexOf("dport"),
		Where:    where,
		Decision: rule.Accept,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquery: ports accepting NEW traffic in Team A's design: %s\n",
		rule.FormatValueSet(ext.Field(ext.IndexOf("dport")), ports))

	// Spec check: no new traffic to the mail server other than port 25.
	pred := rule.FullPredicate(ext)
	pred[ext.IndexOf("dst")] = interval.SetOf(mailServer, mailServer)
	pred[ext.IndexOf("dport")] = ext.FullSet(ext.IndexOf("dport")).Subtract(interval.SetOf(25, 25))
	pred[ext.IndexOf("state")] = interval.SetOf(stateful.TagNew, stateful.TagNew)
	w, err := query.VerifyPolicy(statelessA, pred, rule.Discard)
	if err != nil {
		log.Fatal(err)
	}
	if w == nil {
		fmt.Println("spec check: non-mail new traffic to the mail server is always discarded ✓")
	} else {
		fmt.Printf("spec check FAILED: witness %v gets %v\n", w.Packet, w.Decision)
	}

	// And the stateful engine in action: the DNS reply only passes after
	// the forward query established state.
	client := uint64(0x0A000007)
	reply := rule.Packet{dnsServer, client, 53, 40000, 17}
	forward := rule.Packet{client, dnsServer, 40000, 53, 17}
	d1, _ := fwA.Process(reply)
	d2, _ := fwA.Process(forward)
	d3, _ := fwA.Process(reply)
	fmt.Printf("\nconnection tracking: unsolicited reply %v, query %v, tracked reply %v\n", d1, d2, d3)
}
