// Quickstart: the paper's running example, end to end.
//
// Two teams implement the same requirement specification — "the mail
// server 192.168.0.1 receives e-mail (port 25); the malicious domain
// 224.168.0.0/16 is blocked; everything else is accepted" — and the
// library finds every functional discrepancy between their firewalls
// (the paper's Table 3), exactly and in human-readable form.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"diversefw/internal/core"
	"diversefw/internal/paper"
	"diversefw/internal/textio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// Design phase: each team submits its version (Tables 1 and 2).
	session, err := core.NewSession(paper.Schema())
	if err != nil {
		log.Fatal(err)
	}
	if err := session.AddVersion("Team A", paper.TeamA()); err != nil {
		log.Fatal(err)
	}
	if err := session.AddVersion("Team B", paper.TeamB()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Team A's firewall (Table 1):")
	if err := textio.WritePolicyTable(os.Stdout, paper.TeamA()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTeam B's firewall (Table 2):")
	if err := textio.WritePolicyTable(os.Stdout, paper.TeamB()); err != nil {
		log.Fatal(err)
	}

	// Comparison phase: all functional discrepancies, exactly.
	reports, err := session.Compare()
	if err != nil {
		log.Fatal(err)
	}
	report := reports[0].Report
	fmt.Printf("\nAll functional discrepancies (Table 3) — %d found:\n", len(report.Discrepancies))
	if err := textio.WriteDiscrepancyTable(os.Stdout, paper.Schema(), report.Discrepancies, "Team A", "Team B"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline: construction %v, shaping %v, comparison %v\n",
		report.Timing.Construct, report.Timing.Shape, report.Timing.Compare)
	fmt.Println("\nThe teams now discuss each row: may the malicious domain e-mail the")
	fmt.Println("server? must non-TCP e-mail pass? may non-mail traffic reach the server?")
	fmt.Println("(See examples/redesign for the resolution phase.)")
}
