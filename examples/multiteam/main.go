// Multiteam: diverse design with N > 2 teams (Section 7.3) on a realistic
// five-tuple workload.
//
// Three teams each produce a version of the same 120-rule policy —
// simulated here as a reference design plus per-team perturbations, the
// way Section 8.2.1 models independent versions. The session
// cross-compares all pairs, the pair with the most disagreement is
// resolved (majority vote among the three versions picks each decision),
// and the final firewall is generated and verified.
//
// Run with: go run ./examples/multiteam
package main

import (
	"fmt"
	"log"

	"diversefw/internal/compare"
	"diversefw/internal/core"
	"diversefw/internal/field"
	"diversefw/internal/packet"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("multiteam: ")

	// The "specification": a reference design for the organization's
	// network. Each team's version deviates from it independently.
	reference := synth.Synthetic(synth.Config{Rules: 120, Seed: 100})
	teamA, _ := synth.Perturb(reference, 8, 201)
	teamB, _ := synth.Perturb(reference, 8, 202)
	teamC, _ := synth.Perturb(reference, 8, 203)

	session, err := core.NewSession(field.IPv4FiveTuple())
	if err != nil {
		log.Fatal(err)
	}
	versions := []*rule.Policy{teamA, teamB, teamC}
	for i, p := range versions {
		if err := session.AddVersion(fmt.Sprintf("team-%c", 'A'+i), p); err != nil {
			log.Fatal(err)
		}
	}

	// Cross comparison: all N*(N-1)/2 pairs.
	reports, err := session.Compare()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross comparison (all pairs):")
	worst := 0
	for k, pr := range reports {
		names := session.Versions()
		fmt.Printf("  %s vs %s: %d discrepancies (%.1fms)\n",
			names[pr.I].Name, names[pr.J].Name,
			len(pr.Report.Discrepancies),
			float64(pr.Report.Timing.Total().Microseconds())/1000)
		if len(pr.Report.Discrepancies) > len(reports[worst].Report.Discrepancies) {
			worst = k
		}
	}

	// Resolution of the most-divergent pair: each region is decided by
	// majority vote among the three versions (a witness packet from the
	// region is evaluated against all teams).
	pr := reports[worst]
	plan, err := session.Plan(pr.I, pr.J)
	if err != nil {
		log.Fatal(err)
	}
	err = plan.ResolveAll(func(i int, d compare.Discrepancy) rule.Decision {
		w := make(rule.Packet, len(d.Pred))
		for f, s := range d.Pred {
			v, _ := s.Min()
			w[f] = v
		}
		votes := map[rule.Decision]int{}
		for _, p := range versions {
			dec, _ := packet.Oracle(p, w)
			votes[dec]++
		}
		best, bestN := d.A, 0
		for dec, n := range votes {
			if n > bestN {
				best, bestN = dec, n
			}
		}
		return best
	})
	if err != nil {
		log.Fatal(err)
	}

	final, err := plan.Method1()
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Verify(final); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresolved %d discrepancies by majority vote\n", len(plan.Report.Discrepancies))
	fmt.Printf("final firewall: %d rules, verified against the resolved semantics\n", final.Size())
}
