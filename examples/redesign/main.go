// Redesign: the resolution phase (Section 6) on the paper's example.
//
// After the comparison phase surfaces the three discrepancies of Table 3,
// the teams agree on a decision for each (Table 4). This example generates
// the final firewall both ways the paper describes — Method 1 (correct
// the FDD, regenerate rules; Table 5) and Method 2 (prepend corrections to
// an original, strip redundancy; Tables 6 and 7) — and verifies that all
// three outputs are equivalent.
//
// Run with: go run ./examples/redesign
package main

import (
	"fmt"
	"log"
	"os"

	"diversefw/internal/compare"
	"diversefw/internal/paper"
	"diversefw/internal/resolve"
	"diversefw/internal/rule"
	"diversefw/internal/textio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("redesign: ")

	plan, err := resolve.NewPlan(paper.TeamA(), paper.TeamB())
	if err != nil {
		log.Fatal(err)
	}

	// Resolution: the agreed decisions of Table 4, matched to the report's
	// rows by region.
	resolutions := paper.ResolvedDiscrepancies()
	err = plan.ResolveAll(func(i int, d compare.Discrepancy) rule.Decision {
		for _, res := range resolutions {
			match := true
			for f := range d.Pred {
				if !d.Pred[f].Equal(res.Pred[f]) {
					match = false
					break
				}
			}
			if match {
				return res.Resolved
			}
		}
		log.Fatalf("discrepancy %d matches no Table 4 row", i)
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Resolved discrepancies (Table 4):")
	if err := textio.WriteResolutionTable(os.Stdout, paper.Schema(), plan.Report.Discrepancies, plan.Decisions); err != nil {
		log.Fatal(err)
	}

	// Method 1: corrected FDD -> generated firewall (Table 5).
	m1, err := plan.Method1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMethod 1 — generated from the corrected FDD (%d rules):\n", m1.Size())
	if err := textio.WritePolicyTable(os.Stdout, m1); err != nil {
		log.Fatal(err)
	}

	// Method 2 from each original (Tables 6 and 7).
	m2a, err := plan.Method2(true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMethod 2 — Team A's firewall plus corrections (%d rules):\n", m2a.Size())
	if err := textio.WritePolicyTable(os.Stdout, m2a); err != nil {
		log.Fatal(err)
	}
	m2b, err := plan.Method2(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMethod 2 — Team B's firewall plus corrections (%d rules):\n", m2b.Size())
	if err := textio.WritePolicyTable(os.Stdout, m2b); err != nil {
		log.Fatal(err)
	}

	// All outputs implement the resolved semantics.
	for name, p := range map[string]*rule.Policy{"method 1": m1, "method 2 (A)": m2a, "method 2 (B)": m2b} {
		if err := plan.Verify(p); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	eq, err := compare.Equivalent(m1, m2a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall three firewalls verified equivalent to the resolved semantics: %v\n", eq)
}
