// DMZ: diverse design lifted to a network of firewalls.
//
// Two architects design the same two-firewall network (internet -[gw]-
// dmz -[inner]- lan) with the same intent: the DMZ web server is
// reachable from the Internet on 443; the LAN database is reachable only
// from the DMZ on 5432; nothing else enters. Architect 1 filters
// everything at the gateway; architect 2 splits enforcement across the
// two firewalls. The end-to-end behaviours are composed per zone pair and
// compared exactly — agreement on internet->lan, and a pinpointed
// difference at the DMZ boundary.
//
// Run with: go run ./examples/dmz
package main

import (
	"fmt"
	"log"
	"os"

	"diversefw/internal/compare"
	"diversefw/internal/field"
	"diversefw/internal/netmodel"
	"diversefw/internal/rule"
	"diversefw/internal/textio"
)

func mustPolicy(s *field.Schema, text string) *rule.Policy {
	p, err := rule.ParsePolicyString(s, text)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dmz: ")
	s := field.IPv4FiveTuple()

	const (
		web = "10.0.1.10" // DMZ web server
		db  = "10.0.2.20" // LAN database
	)

	// Architect 1: the gateway enforces everything; the inner firewall
	// only guards the database.
	gw1 := mustPolicy(s, `
dst in `+web+` && dport in 443 && proto in tcp -> accept
dst in `+db+` && dport in 5432 && proto in tcp -> accept # gateway passes it for the inner fw
any -> discard
`)
	inner1 := mustPolicy(s, `
src in 10.0.1.0/24 && dst in `+db+` && dport in 5432 && proto in tcp -> accept
any -> discard
`)

	// Architect 2: the gateway only admits DMZ-bound web traffic; the
	// inner firewall owns the database rule entirely.
	gw2 := mustPolicy(s, `
dst in `+web+` && dport in 443 && proto in tcp -> accept
dst in 10.0.2.0/24 -> accept # architect 2 trusts the inner firewall for LAN-bound traffic
any -> discard
`)
	inner2 := inner1.Clone()

	build := func(gw, inner *rule.Policy) *netmodel.Topology {
		top, err := netmodel.New(s)
		if err != nil {
			log.Fatal(err)
		}
		for _, z := range []string{"internet", "dmz", "lan"} {
			if err := top.AddZone(z); err != nil {
				log.Fatal(err)
			}
		}
		if err := top.Connect("internet", "dmz", gw, nil); err != nil {
			log.Fatal(err)
		}
		if err := top.Connect("dmz", "lan", inner, nil); err != nil {
			log.Fatal(err)
		}
		return top
	}
	t1 := build(gw1, inner1)
	t2 := build(gw2, inner2)

	for _, pair := range [][2]string{{"internet", "lan"}, {"internet", "dmz"}, {"dmz", "lan"}} {
		e1, err := t1.EndToEnd(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		e2, err := t2.EndToEnd(pair[0], pair[1])
		if err != nil {
			log.Fatal(err)
		}
		report, err := compare.Diff(e1, e2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s -> %s: ", pair[0], pair[1])
		if report.Equivalent() {
			fmt.Println("the two architectures behave identically")
			continue
		}
		fmt.Printf("%d end-to-end discrepancies\n", len(report.Discrepancies))
		if err := textio.WriteDiscrepancyTable(os.Stdout, s, report.Discrepancies, "architect 1", "architect 2"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\n(architect 2's gateway admits all LAN-bound traffic into the DMZ,")
	fmt.Println("trusting the inner firewall — identical end to end, but a larger")
	fmt.Println("DMZ attack surface. Exactly the kind of difference the comparison")
	fmt.Println("phase is meant to put in front of both teams.)")
}
