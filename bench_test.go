// Package diversefw's root benchmark suite regenerates every quantity in
// the paper's evaluation as a testing.B benchmark, one group per table or
// figure (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// recorded results):
//
//   - BenchmarkTable3* — the running example's full pipeline
//   - BenchmarkFig12* — perturbation comparison on real-life-sized bases
//   - BenchmarkFig13* — synthetic pairs, per-phase cost vs. rule count
//   - BenchmarkEffectiveness — the Section 8.1 redesign workload
//   - BenchmarkBDD* — the Section 7.5 baseline
//   - BenchmarkResolution* — Section 6's two generation methods
//   - BenchmarkAblation* — cost of the design choices DESIGN.md calls out
//
// Run with: go test -bench=. -benchmem
package diversefw

import (
	"fmt"
	"testing"

	"diversefw/internal/anomaly"
	"diversefw/internal/backtoback"
	"diversefw/internal/bdd"
	"diversefw/internal/compare"
	"diversefw/internal/fdd"
	"diversefw/internal/gen"
	"diversefw/internal/impact"
	"diversefw/internal/paper"
	"diversefw/internal/query"
	"diversefw/internal/redundancy"
	"diversefw/internal/resolve"
	"diversefw/internal/rule"
	"diversefw/internal/shape"
	"diversefw/internal/spec"
	"diversefw/internal/stateful"
	"diversefw/internal/synth"
)

// BenchmarkTable3_PaperExample runs the complete pipeline — construction,
// shaping, comparison — on the Tables 1-2 firewalls.
func BenchmarkTable3_PaperExample(b *testing.B) {
	pa, pb := paper.TeamA(), paper.TeamB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := compare.Diff(pa, pb)
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Discrepancies) != 3 {
			b.Fatalf("got %d rows", len(report.Discrepancies))
		}
	}
}

// benchDiff measures compare.Diff on a fixed pair.
func benchDiff(b *testing.B, pa, pb *rule.Policy) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compare.Diff(pa, pb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 reproduces the real-life experiment: a base firewall of
// 661 or 42 rules compared against a perturbed version, for x in
// {5, 20, 50} (the full 5..50 sweep is in cmd/fwbench).
func BenchmarkFig12(b *testing.B) {
	for _, base := range []int{661, 42} {
		orig := synth.RealLife(base, 1)
		for _, x := range []int{5, 20, 50} {
			perturbed, _ := synth.Perturb(orig, float64(x), int64(x))
			b.Run(fmt.Sprintf("base=%d/x=%d", base, x), func(b *testing.B) {
				benchDiff(b, orig, perturbed)
			})
		}
	}
}

// BenchmarkFig13 reproduces the synthetic experiment: independently
// generated pairs of up to 3,000 rules.
func BenchmarkFig13(b *testing.B) {
	for _, n := range []int{250, 500, 1000, 2000, 3000} {
		pa := synth.Synthetic(synth.Config{Rules: n, Seed: 1})
		pb := synth.Synthetic(synth.Config{Rules: n, Seed: 2})
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			benchDiff(b, pa, pb)
		})
	}
}

// BenchmarkFig13_Phases splits one Fig. 13 point into the paper's three
// curves: construction, shaping, comparison.
func BenchmarkFig13_Phases(b *testing.B) {
	const n = 1000
	pa := synth.Synthetic(synth.Config{Rules: n, Seed: 1})
	pb := synth.Synthetic(synth.Config{Rules: n, Seed: 2})

	b.Run("construction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fdd.Construct(pa); err != nil {
				b.Fatal(err)
			}
			if _, err := fdd.Construct(pb); err != nil {
				b.Fatal(err)
			}
		}
	})

	fa, err := fdd.Construct(pa)
	if err != nil {
		b.Fatal(err)
	}
	fb, err := fdd.Construct(pb)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("shaping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := shape.MakeSemiIsomorphic(fa, fb); err != nil {
				b.Fatal(err)
			}
		}
	})

	sa, sb, err := shape.MakeSemiIsomorphic(fa, fb)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("comparison", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			compare.CompareSemiIsomorphic(sa, sb)
		}
	})
}

// BenchmarkEffectiveness reproduces the Section 8.1 workload: the 87-rule
// firewall with seeded errors compared against a redesign.
func BenchmarkEffectiveness(b *testing.B) {
	reference := synth.RealLife(87, 3)
	original, _ := synth.InjectErrors(reference, synth.ErrorConfig{
		OrderingErrors: 12, MissingRules: 4, Seed: 8,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := compare.Diff(original, reference)
		if err != nil {
			b.Fatal(err)
		}
		if len(report.Discrepancies) == 0 {
			b.Fatal("seeded errors must surface")
		}
	}
}

// BenchmarkBDDBaseline reproduces the Section 7.5 comparison point: the
// BDD diff of two 50-rule synthetic firewalls (whose cube count explodes
// into the millions) vs. the FDD pipeline on the same pair.
func BenchmarkBDDBaseline(b *testing.B) {
	pa := synth.Synthetic(synth.Config{Rules: 50, Seed: 1})
	pb := synth.Synthetic(synth.Config{Rules: 50, Seed: 2})
	b.Run("bdd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := bdd.DiffPolicies(pa, pb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fdd", func(b *testing.B) {
		benchDiff(b, pa, pb)
	})
}

// paperPlanB builds the resolved plan of the running example.
func paperPlanB(b *testing.B) *resolve.Plan {
	b.Helper()
	plan, err := resolve.NewPlan(paper.TeamA(), paper.TeamB())
	if err != nil {
		b.Fatal(err)
	}
	resolutions := paper.ResolvedDiscrepancies()
	err = plan.ResolveAll(func(i int, d compare.Discrepancy) rule.Decision {
		for _, res := range resolutions {
			match := true
			for f := range d.Pred {
				if !d.Pred[f].Equal(res.Pred[f]) {
					match = false
					break
				}
			}
			if match {
				return res.Resolved
			}
		}
		b.Fatalf("unmatched discrepancy %d", i)
		return 0
	})
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkResolution_Method1 measures Table 5 generation (corrected FDD
// -> compact firewall).
func BenchmarkResolution_Method1(b *testing.B) {
	plan := paperPlanB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Method1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResolution_Method2 measures Tables 6-7 generation (corrections
// + original, redundancy removed).
func BenchmarkResolution_Method2(b *testing.B) {
	plan := paperPlanB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Method2(true); err != nil {
			b.Fatal(err)
		}
		if _, err := plan.Method2(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures the structured-design rule generator ([12])
// on a realistic FDD.
func BenchmarkGenerate(b *testing.B) {
	p := synth.Synthetic(synth.Config{Rules: 200, Seed: 5})
	f, err := fdd.Construct(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRedundancyRemoval measures complete redundancy removal ([19])
// on a policy seeded with shadowed and downward-redundant rules.
func BenchmarkRedundancyRemoval(b *testing.B) {
	base := synth.Synthetic(synth.Config{Rules: 60, Seed: 7})
	// Duplicate a slice of rules to guarantee redundancy.
	rules := append([]rule.Rule{}, base.Rules[:10]...)
	rules = append(rules, base.Rules...)
	p, err := rule.NewPolicy(base.Schema, rules)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := redundancy.RemoveAll(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ReduceBeforeShape quantifies the design choice of
// shaping reduced DAGs instead of raw construction trees: the unreduced
// variant re-expands each diagram (Simplify) before shaping.
func BenchmarkAblation_ReduceBeforeShape(b *testing.B) {
	const n = 200
	pa := synth.Synthetic(synth.Config{Rules: n, Seed: 1})
	pb := synth.Synthetic(synth.Config{Rules: n, Seed: 2})
	fa, err := fdd.Construct(pa)
	if err != nil {
		b.Fatal(err)
	}
	fb, err := fdd.Construct(pb)
	if err != nil {
		b.Fatal(err)
	}
	// Expanded trees simulate the paper's unreduced construction output.
	ta, tb := fa.Simplify(), fb.Simplify()

	b.Run("reduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := shape.MakeSemiIsomorphic(fa, fb); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unreduced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := shape.MakeSemiIsomorphic(ta, tb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation_Marking quantifies the generator's marking step: the
// number of simple rules emitted with weight-based marking vs. without it
// (every interval expanded, no deferred default edge).
func BenchmarkAblation_Marking(b *testing.B) {
	p := synth.Synthetic(synth.Config{Rules: 200, Seed: 5})
	f, err := fdd.Construct(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marked", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			g, err := gen.Generate(f)
			if err != nil {
				b.Fatal(err)
			}
			total += g.Size()
		}
		b.ReportMetric(float64(total)/float64(b.N), "rules/op")
	})
	b.Run("unmarked", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			g, err := gen.GenerateUnmarked(f)
			if err != nil {
				b.Fatal(err)
			}
			total += g.Size()
		}
		b.ReportMetric(float64(total)/float64(b.N), "rules/op")
	})
}

// BenchmarkDiffN compares the direct N-way comparison (Section 7.3) with
// pairwise cross comparison on three versions of one policy.
func BenchmarkDiffN(b *testing.B) {
	base := synth.Synthetic(synth.Config{Rules: 120, Seed: 100})
	v1, _ := synth.Perturb(base, 8, 201)
	v2, _ := synth.Perturb(base, 8, 202)
	v3, _ := synth.Perturb(base, 8, 203)
	policies := []*rule.Policy{v1, v2, v3}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compare.DiffN(policies); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compare.CrossCompare(policies); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBackToBack contrasts the Section 9 baseline: a 10,000-packet
// back-to-back test run vs. the exact comparison of the same pair.
func BenchmarkBackToBack(b *testing.B) {
	base := synth.RealLife(200, 5)
	perturbed, _ := synth.Perturb(base, 15, 9)
	b.Run("backtoback-10k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := backtoback.Run(base, perturbed, 10000, int64(i), backtoback.Biased); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		benchDiff(b, base, perturbed)
	})
}

// BenchmarkStatefulDiff measures comparing two stateful firewalls over
// the tag-extended schema.
func BenchmarkStatefulDiff(b *testing.B) {
	newA := synth.Synthetic(synth.Config{Rules: 80, Seed: 1})
	newB, _ := synth.Perturb(newA, 10, 2)
	sa, err := stateful.TrackingPolicy(newA)
	if err != nil {
		b.Fatal(err)
	}
	sb, err := stateful.TrackingPolicy(newB)
	if err != nil {
		b.Fatal(err)
	}
	fwA, err := stateful.New(sa)
	if err != nil {
		b.Fatal(err)
	}
	fwB, err := stateful.New(sb)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stateful.Diff(fwA, fwB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuery measures an exact firewall query ([20]) against a
// realistic policy.
func BenchmarkQuery(b *testing.B) {
	p := synth.Synthetic(synth.Config{Rules: 661, Seed: 1})
	f, err := fdd.Construct(p)
	if err != nil {
		b.Fatal(err)
	}
	q := query.Query{
		Select:   3, // dport
		Where:    rule.FullPredicate(p.Schema),
		Decision: rule.Accept,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Run(f, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnomalyDetect measures the pairwise anomaly baseline ([1]) on
// a 661-rule policy.
func BenchmarkAnomalyDetect(b *testing.B) {
	p := synth.Synthetic(synth.Config{Rules: 661, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		anomaly.Detect(p)
	}
}

// BenchmarkImpactAnalysis measures change-impact analysis of one rule
// insertion into a 661-rule policy (the Section 8.1 tool-support case).
func BenchmarkImpactAnalysis(b *testing.B) {
	before := synth.RealLife(661, 1)
	after, err := before.InsertRule(0, before.Rules[40])
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im, err := impact.Analyze(before, after)
		if err != nil {
			b.Fatal(err)
		}
		_ = im.Attribute()
	}
}

// BenchmarkSpecCheck measures verifying the mechanized paper spec against
// the agreed firewall.
func BenchmarkSpecCheck(b *testing.B) {
	s, err := spec.PaperSpec(paper.Schema())
	if err != nil {
		b.Fatal(err)
	}
	p := paper.AgreedFirewall()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Check(p)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Satisfied() {
			b.Fatal("spec must hold")
		}
	}
}

// BenchmarkConstruction isolates the construction algorithm at the
// paper's real-life sizes.
func BenchmarkConstruction(b *testing.B) {
	for _, n := range []int{42, 661, 3000} {
		p := synth.Synthetic(synth.Config{Rules: n, Seed: 1})
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fdd.Construct(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
