// End-to-end integration tests: the complete diverse firewall design
// workflow driven through the public API, on realistic synthetic
// policies, with every output cross-checked against the brute-force
// oracle.
package diversefw

import (
	"testing"

	"diversefw/internal/anomaly"
	"diversefw/internal/backtoback"
	"diversefw/internal/compare"
	"diversefw/internal/core"
	"diversefw/internal/field"
	"diversefw/internal/impact"
	"diversefw/internal/packet"
	"diversefw/internal/query"
	"diversefw/internal/redundancy"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
)

// TestFullDiverseDesignWorkflow runs design -> compare -> resolve ->
// generate -> verify on two realistic versions, then exercises change
// impact, queries, and audits on the final firewall.
func TestFullDiverseDesignWorkflow(t *testing.T) {
	t.Parallel()

	// Design phase: a reference intent and two team versions derived from
	// it (the Section 8.2.1 model of independent teams).
	reference := synth.Synthetic(synth.Config{Rules: 80, Seed: 1000})
	teamA, _ := synth.Perturb(reference, 10, 2001)
	teamB, _ := synth.Perturb(reference, 10, 2002)

	session, err := core.NewSession(field.IPv4FiveTuple())
	if err != nil {
		t.Fatal(err)
	}
	if err := session.AddVersion("team-a", teamA); err != nil {
		t.Fatal(err)
	}
	if err := session.AddVersion("team-b", teamB); err != nil {
		t.Fatal(err)
	}

	// Comparison phase.
	reports, err := session.Compare()
	if err != nil {
		t.Fatal(err)
	}
	report := reports[0].Report
	if report.Equivalent() {
		t.Skip("perturbations happened to agree; nothing to resolve")
	}

	// Every discrepancy region is genuine (oracle agrees on decisions).
	sm := packet.NewSampler(teamA.Schema, 99)
	for i := 0; i < 3000; i++ {
		pkt := sm.BiasedPair(teamA, teamB)
		da, _ := packet.Oracle(teamA, pkt)
		db, _ := packet.Oracle(teamB, pkt)
		hit := false
		for _, d := range report.Discrepancies {
			if d.Pred.Matches(pkt) {
				hit = true
				if d.A != da || d.B != db {
					t.Fatalf("region decisions wrong for %v", pkt)
				}
			}
		}
		if hit != (da != db) {
			t.Fatalf("region coverage wrong for %v", pkt)
		}
	}

	// Resolution phase: the reference is the ground truth arbiter (the
	// "teams discuss" step, mechanized for the test).
	plan, err := session.Plan(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	err = plan.ResolveAll(func(i int, d compare.Discrepancy) rule.Decision {
		w := make(rule.Packet, len(d.Pred))
		for f, s := range d.Pred {
			v, _ := s.Min()
			w[f] = v
		}
		dec, _ := packet.Oracle(reference, w)
		return dec
	})
	if err != nil {
		t.Fatal(err)
	}

	final1, err := plan.Method1()
	if err != nil {
		t.Fatal(err)
	}
	final2, err := plan.Method2(true)
	if err != nil {
		t.Fatal(err)
	}
	for name, final := range map[string]*rule.Policy{"method1": final1, "method2": final2} {
		if err := plan.Verify(final); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	eq, err := compare.Equivalent(final1, final2)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("the two generation methods disagree")
	}

	// The final firewall has no redundant rules left after Method 2's
	// compaction... (Method 1 output may; check semantics only.) Spot
	// check: a second session with both finals is all-equivalent.
	s2, err := core.NewSession(field.IPv4FiveTuple())
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AddVersion("m1", final1); err != nil {
		t.Fatal(err)
	}
	if err := s2.AddVersion("m2", final2); err != nil {
		t.Fatal(err)
	}
	allEq, err := s2.AllEquivalent()
	if err != nil {
		t.Fatal(err)
	}
	if !allEq {
		t.Fatal("finals should be equivalent")
	}

	// Change-impact on the final firewall: swapping two conflicting rules
	// is either a no-op or exactly reported; verify against the oracle.
	if final1.Size() >= 3 {
		after, err := final1.SwapRules(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		im, err := core.AnalyzeChange(final1, after)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			pkt := sm.BiasedPair(final1, after)
			db, _ := packet.Oracle(final1, pkt)
			da, _ := packet.Oracle(after, pkt)
			hit := false
			for _, d := range im.Report.Discrepancies {
				if d.Pred.Matches(pkt) {
					hit = true
				}
			}
			if hit != (da != db) {
				t.Fatalf("impact coverage wrong for %v", pkt)
			}
		}
	}

	// Query the final firewall: accepted destination ports must be the
	// exact projection of accepting regions.
	ports, err := query.RunPolicy(final1, query.Query{
		Select:   3,
		Where:    rule.FullPredicate(final1.Schema),
		Decision: rule.Accept,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		pkt := sm.Biased(final1)
		d, _ := packet.Oracle(final1, pkt)
		if d == rule.Accept && !ports.Contains(pkt[3]) {
			t.Fatalf("port %d accepted but missing from query result", pkt[3])
		}
	}
}

// TestBaselinesAgreeOnEquivalence: every implemented analysis agrees when
// two policies are equivalent — the exact diff, back-to-back testing, and
// redundancy of a concatenation.
func TestBaselinesAgreeOnEquivalence(t *testing.T) {
	t.Parallel()
	p := synth.Synthetic(synth.Config{Rules: 60, Seed: 3})
	q := p.Clone()

	eq, err := compare.Equivalent(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("clone not equivalent")
	}

	res, err := backtoback.Run(p, q, 5000, 1, backtoback.Biased)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Witnesses) != 0 {
		t.Fatal("back-to-back found witnesses between equivalent policies")
	}

	// Prepending p's own first rule is redundant; the complete check
	// must find and remove it without changing semantics.
	dup, err := p.InsertRule(0, p.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	compacted, removed, err := redundancy.RemoveAll(dup)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) == 0 {
		t.Fatal("duplicate rule not detected")
	}
	eq, err = compare.Equivalent(compacted, p)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("compaction changed semantics")
	}

	// The anomaly detector flags the duplicate pair too (as pairwise
	// redundancy or shadowing, depending on decisions).
	found := false
	for _, a := range anomaly.Detect(dup) {
		if a.I == 0 && a.J == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("anomaly detector missed the duplicated rule")
	}

	// And impact analysis sees no functional change from the insertion.
	im, err := impact.Analyze(p, dup)
	if err != nil {
		t.Fatal(err)
	}
	if !im.None() {
		t.Fatal("duplicate insertion reported as impactful")
	}
}
