// Command fwscen executes the seeded scenario matrix in
// testdata/scenarios against an in-process fwserved instance and gates
// a release on the outcome: overload shedding, cache-cold storms,
// adversarial policies, chaos fault flake, and drain under load, each
// run multiple times with per-run SLO assertions and a cross-run
// variance gate.
//
// Usage:
//
//	fwscen [-scenarios testdata/scenarios] [-run regex] [-out dir]
//	       [-reruns 3] [-loadscale 1.0] [-fast]
//	       [-baseline results/BENCH_n.json] [-nocalibrate]
//
// Each run writes raw_samples.jsonl (the deterministic op schedule —
// two runs with the same seed produce byte-identical streams) and
// result.json (phase metrics, assertion verdicts, SLO snapshot) under
// <out>/<scenario>/run<i>/; each scenario gets a summary.json and the
// matrix a provenance.json recording commit, Go version, and the
// machine-calibration ratio against -baseline.
//
// -fast is the CI mode: 1 rerun at 0.4 load scale (scripts/check.sh
// wires it as a release gate; SKIP_SCEN_GATE=1 is the escape hatch).
//
// Exit status: 0 all scenarios green, 1 an assertion or variance gate
// failed, 2 usage or configuration error.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"diversefw/internal/scen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scenarios   = flag.String("scenarios", "testdata/scenarios", "directory of scenario *.json files")
		runFilter   = flag.String("run", "", "regexp filtering scenario names")
		out         = flag.String("out", "scen-out", "artifact output directory")
		reruns      = flag.Int("reruns", 3, "runs per scenario (variance gate needs >= 2)")
		loadScale   = flag.Float64("loadscale", 1.0, "scale factor on every phase's op count")
		fast        = flag.Bool("fast", false, "CI mode: 1 rerun at 0.4 load scale")
		baseline    = flag.String("baseline", "", "BENCH_*.json whose calibration anchors provenance")
		nocalibrate = flag.Bool("nocalibrate", false, "skip the ~1s machine-calibration measurement")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "fwscen: unexpected arguments %v\n", flag.Args())
		return 2
	}
	cfg := scen.MatrixConfig{
		ScenarioDir:     *scenarios,
		OutDir:          *out,
		Reruns:          *reruns,
		LoadScale:       *loadScale,
		Baseline:        *baseline,
		SkipCalibration: *nocalibrate,
		Log:             os.Stdout,
	}
	if *fast {
		cfg.Reruns = 1
		cfg.LoadScale = 0.4
	}
	if *runFilter != "" {
		re, err := regexp.Compile(*runFilter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fwscen: bad -run regexp: %v\n", err)
			return 2
		}
		cfg.Run = re
	}
	res, err := scen.RunMatrix(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fwscen: %v\n", err)
		return 2
	}
	for _, s := range res.Scenarios {
		verdict := "PASS"
		if !s.Passed {
			verdict = "FAIL"
		}
		fmt.Printf("%s %-20s (%d runs)\n", verdict, s.Name, s.Reruns)
	}
	if !res.Passed {
		fmt.Println("scenario matrix: FAILED")
		return 1
	}
	fmt.Printf("scenario matrix: all %d scenarios green; artifacts in %s\n", len(res.Scenarios), *out)
	return 0
}
