// Command fwimpact performs firewall change-impact analysis (Section 1.3
// of the paper): it compares a policy before and after a change and
// reports exactly which traffic changed decision, attributing each
// impacted region to the responsible rules.
//
// Usage:
//
//	fwimpact [-schema five|four|paper] [-trace trace.json] before.fw after.fw
//	fwimpact -edit 'insert 1: dport in 25 -> discard' before.fw   # what-if
//
// With one or more -edit flags (or -edits script.txt) the "after" policy
// is synthesized by applying the edit script to the before policy —
// impact analysis of a proposed change without writing the file.
//
// Exit status is 0 when the change has no functional impact, 1 when it
// has, and 2 on usage or input errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"diversefw/internal/cli"
	"diversefw/internal/compare"
	"diversefw/internal/engine"
	"diversefw/internal/impact"
	"diversefw/internal/ruldiff"
	"diversefw/internal/rule"
	"diversefw/internal/textio"
	"diversefw/internal/trace"
)

func main() {
	os.Exit(run())
}

// editFlags collects repeatable -edit values.
type editFlags []string

func (e *editFlags) String() string { return strings.Join(*e, "; ") }

func (e *editFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func run() int {
	fs := flag.NewFlagSet("fwimpact", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	format := fs.String("format", "text", "input format: "+cli.FormatNames())
	chain := fs.String("chain", "INPUT", "chain to read for iptables/nftables inputs")
	showRules := fs.Bool("rules", false, "also print the rule-level (textual) diff")
	var editLines editFlags
	fs.Var(&editLines, "edit", "edit to apply to the before policy (repeatable); see docs/FORMATS.md")
	editsFile := fs.String("edits", "", "file holding an edit script, one edit per line")
	traceFile := fs.String("trace", "", "write the run's span tree to this file as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwimpact [-schema name] [-format name] before.fw after.fw")
		fmt.Fprintln(os.Stderr, "       fwimpact [-edit '...']... [-edits script.txt] before.fw")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	editMode := len(editLines) > 0 || *editsFile != ""
	if (editMode && fs.NArg() != 1) || (!editMode && fs.NArg() != 2) {
		fs.Usage()
		return 2
	}

	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwimpact:", err)
		return 2
	}
	before, err := cli.LoadPolicyFormat(schema, fs.Arg(0), *format, *chain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwimpact:", err)
		return 2
	}
	var edits []impact.Edit
	var after *rule.Policy
	if editMode {
		if *editsFile != "" {
			raw, err := os.ReadFile(*editsFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fwimpact:", err)
				return 2
			}
			edits, err = impact.ParseEdits(schema, string(raw))
			if err != nil {
				fmt.Fprintln(os.Stderr, "fwimpact:", err)
				return 2
			}
		}
		for _, line := range editLines {
			e, err := impact.ParseEdit(schema, line)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fwimpact:", err)
				return 2
			}
			edits = append(edits, e)
		}
	} else {
		after, err = cli.LoadPolicyFormat(schema, fs.Arg(1), *format, *chain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwimpact:", err)
			return 2
		}
	}

	// Route the comparison through the engine — same code path as the
	// server — then derive the impact view from the shared report. The
	// edit-script form takes the incremental route: the after-FDD resumes
	// the before policy's construction from a checkpoint when possible.
	ctx := context.Background()
	var tr *trace.Trace
	if *traceFile != "" {
		ctx, tr = trace.New(ctx, "fwimpact", "")
	}
	eng := engine.New(engine.Config{})
	var report *compare.Report
	if editMode {
		var st engine.EditStats
		after, report, st, err = eng.ImpactEdits(ctx, before, edits)
		if err == nil && st.Incremental {
			fmt.Fprintf(os.Stderr, "fwimpact: incremental build: resumed at rule %d, reappended %d of %d rules\n",
				st.CheckpointRules, st.RulesReappended, after.Size())
		}
	} else {
		report, _, err = eng.DiffPolicies(ctx, before, after)
	}
	if tr != nil {
		tr.Finish()
		if werr := trace.WriteFileJSON(*traceFile, tr.Snapshot()); werr != nil {
			fmt.Fprintln(os.Stderr, "fwimpact: writing trace:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwimpact:", err)
		return 2
	}
	im := impact.FromReport(before, after, report)
	if *showRules {
		d, err := ruldiff.Compute(before, after)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwimpact:", err)
			return 2
		}
		fmt.Print(d.Render())
		fmt.Println()
	}
	if err := textio.WriteImpactReport(os.Stdout, im); err != nil {
		fmt.Fprintln(os.Stderr, "fwimpact:", err)
		return 2
	}
	if im.None() {
		return 0
	}
	return 1
}
