package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwimpact"}, args...)
	return run()
}

func TestImpactfulChange(t *testing.T) {
	dir := t.TempDir()
	before := writeFile(t, dir, "before.fw", `
dst in 192.168.0.1 && dport in 25 -> accept
any -> discard
`)
	after := writeFile(t, dir, "after.fw", `
proto in udp -> discard
dst in 192.168.0.1 && dport in 25 -> accept
any -> discard
`)
	if code := withArgs(t, before, after); code != 1 {
		t.Fatalf("exit = %d, want 1 (change has impact)", code)
	}
	if code := withArgs(t, "-rules", before, after); code != 1 {
		t.Fatalf("-rules exit = %d, want 1", code)
	}
}

func TestNoOpChange(t *testing.T) {
	dir := t.TempDir()
	text := "dst in 192.168.0.1 -> accept\nany -> discard\n"
	before := writeFile(t, dir, "before.fw", text)
	after := writeFile(t, dir, "after.fw", "dst in 192.168.0.1 -> accept\ndst in 192.168.0.1 && dport in 25 -> accept\nany -> discard\n")
	// The inserted rule is fully shadowed: no functional impact.
	if code := withArgs(t, before, after); code != 0 {
		t.Fatalf("exit = %d, want 0 (no impact)", code)
	}
}

func TestEditMode(t *testing.T) {
	dir := t.TempDir()
	before := writeFile(t, dir, "before.fw", `
dst in 192.168.0.1 && dport in 25 -> accept
any -> discard
`)
	// Impactful edit via flag.
	if code := withArgs(t, "-edit", "insert 1: dport in 25 -> discard", before); code != 1 {
		t.Fatalf("impactful edit: exit = %d, want 1", code)
	}
	// Cosmetic edit: append an unreachable rule.
	if code := withArgs(t, "-edit", "append: dport in 25 -> accept", before); code != 0 {
		t.Fatalf("cosmetic edit: exit = %d, want 0", code)
	}
	// Edit script file: blocking UDP above the mail rule kills UDP mail.
	script := writeFile(t, dir, "edits.txt", "insert 1: proto in udp -> discard\nappend: any -> discard\n")
	if code := withArgs(t, "-edits", script, before); code != 1 {
		t.Fatalf("script edit: exit = %d, want 1", code)
	}
	// Errors.
	if code := withArgs(t, "-edit", "zork", before); code != 2 {
		t.Fatalf("bad edit: exit = %d, want 2", code)
	}
	if code := withArgs(t, "-edit", "delete 99", before); code != 2 {
		t.Fatalf("out-of-range edit: exit = %d, want 2", code)
	}
	if code := withArgs(t, "-edits", filepath.Join(dir, "missing.txt"), before); code != 2 {
		t.Fatalf("missing script: exit = %d, want 2", code)
	}
	// Edit mode takes exactly one positional.
	if code := withArgs(t, "-edit", "delete 1", before, before); code != 2 {
		t.Fatalf("two files in edit mode: exit = %d, want 2", code)
	}
}

func TestImpactUsageErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.fw", "any -> accept\n")
	if code := withArgs(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code := withArgs(t, "-schema", "bogus", a, a); code != 2 {
		t.Fatalf("bad schema: exit = %d, want 2", code)
	}
	if code := withArgs(t, a, filepath.Join(dir, "nope.fw")); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
}
