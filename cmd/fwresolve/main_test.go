package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwresolve"}, args...)
	return run()
}

const teamA = `
dst in 192.168.0.1 && dport in 25 -> accept
src in 224.168.0.0/16 -> discard
any -> accept
`

const teamB = `
src in 224.168.0.0/16 -> discard
dst in 192.168.0.1 && dport in 25 && proto in tcp -> accept
dst in 192.168.0.1 -> discard
any -> accept
`

func fixtures(t *testing.T) (a, b string) {
	dir := t.TempDir()
	return writeFile(t, dir, "a.fw", teamA), writeFile(t, dir, "b.fw", teamB)
}

func TestListMode(t *testing.T) {
	a, b := fixtures(t)
	if code := withArgs(t, a, b); code != 1 {
		t.Fatalf("list with discrepancies: exit = %d, want 1", code)
	}
	// Equivalent inputs list cleanly.
	if code := withArgs(t, a, a); code != 0 {
		t.Fatalf("list equivalent: exit = %d, want 0", code)
	}
}

func TestResolveAllMethods(t *testing.T) {
	a, b := fixtures(t)
	for _, method := range []string{"fdd", "a", "b"} {
		if code := withArgs(t, "-decide", "1=discard,2=accept,3=discard", "-method", method, a, b); code != 0 {
			t.Fatalf("method %s: exit = %d, want 0", method, code)
		}
	}
}

func TestResolveErrors(t *testing.T) {
	a, b := fixtures(t)
	cases := [][]string{
		{"-decide", "1=discard", a, b},                     // incomplete
		{"-decide", "banana", a, b},                        // malformed
		{"-decide", "0=discard", a, b},                     // bad row
		{"-decide", "1=zap,2=accept,3=discard", a, b},      // bad decision
		{"-decide", "9=discard,1=a,2=a,3=a", a, b},         // out of range
		{"-decide", "1=d,2=a,3=d", "-method", "zig", a, b}, // bad method
		{a}, // usage
	}
	for _, args := range cases {
		if code := withArgs(t, args...); code != 2 {
			t.Fatalf("args %v: exit = %d, want 2", args, code)
		}
	}
}
