// Command fwresolve runs the resolution phase (Section 6) on two policy
// files: it lists the functional discrepancies, applies the decisions the
// teams agreed on, and emits the final firewall via either generation
// method.
//
// Usage:
//
//	fwresolve [-schema name] a.fw b.fw                      # list discrepancies
//	fwresolve a.fw b.fw -decide 1=discard,2=accept,3=discard \
//	          [-method fdd|a|b] > final.fw                  # generate
//
// -method fdd is the paper's Method 1 (corrected FDD -> generated rules);
// -method a / b is Method 2 starting from the respective original. The
// output is verified against the resolved semantics before being printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"diversefw/internal/cli"
	"diversefw/internal/resolve"
	"diversefw/internal/rule"
	"diversefw/internal/textio"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwresolve", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	decide := fs.String("decide", "", "comma-separated <row>=<decision> resolutions, e.g. 1=discard,2=accept")
	method := fs.String("method", "fdd", "generation method: fdd (Method 1), a or b (Method 2)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwresolve [-schema name] [-decide 1=dec,...] [-method fdd|a|b] a.fw b.fw")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwresolve:", err)
		return 2
	}
	pa, err := cli.LoadPolicy(schema, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwresolve:", err)
		return 2
	}
	pb, err := cli.LoadPolicy(schema, fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwresolve:", err)
		return 2
	}

	plan, err := resolve.NewPlan(pa, pb)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwresolve:", err)
		return 2
	}

	if *decide == "" {
		// Listing mode: print the discrepancy table for the teams to
		// discuss, numbered the way -decide expects.
		if err := textio.WriteDiscrepancyTable(os.Stderr, schema, plan.Report.Discrepancies,
			fs.Arg(0), fs.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "fwresolve:", err)
			return 2
		}
		if len(plan.Report.Discrepancies) > 0 {
			fmt.Fprintln(os.Stderr, "\nresolve with: fwresolve -decide 1=<dec>,... -method fdd|a|b", fs.Arg(0), fs.Arg(1))
			return 1
		}
		return 0
	}

	for _, part := range strings.Split(*decide, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			fmt.Fprintf(os.Stderr, "fwresolve: bad -decide entry %q\n", part)
			return 2
		}
		row, err := strconv.Atoi(kv[0])
		if err != nil || row < 1 {
			fmt.Fprintf(os.Stderr, "fwresolve: bad row number %q\n", kv[0])
			return 2
		}
		dec, err := rule.ParseDecision(kv[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwresolve:", err)
			return 2
		}
		if err := plan.Resolve(row-1, dec); err != nil {
			fmt.Fprintln(os.Stderr, "fwresolve:", err)
			return 2
		}
	}
	if !plan.Resolved() {
		fmt.Fprintf(os.Stderr, "fwresolve: %d discrepancies, not all resolved by -decide\n",
			len(plan.Report.Discrepancies))
		return 2
	}

	var final *rule.Policy
	switch strings.ToLower(*method) {
	case "fdd", "1", "method1":
		final, err = plan.Method1()
	case "a":
		final, err = plan.Method2(true)
	case "b":
		final, err = plan.Method2(false)
	default:
		fmt.Fprintf(os.Stderr, "fwresolve: unknown method %q\n", *method)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwresolve:", err)
		return 2
	}
	if err := plan.Verify(final); err != nil {
		fmt.Fprintln(os.Stderr, "fwresolve:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "fwresolve: %d discrepancies resolved; final firewall has %d rules (verified)\n",
		len(plan.Report.Discrepancies), final.Size())
	if err := rule.WritePolicy(os.Stdout, final); err != nil {
		fmt.Fprintln(os.Stderr, "fwresolve:", err)
		return 2
	}
	return 0
}
