package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"testing"
	"time"

	"diversefw/internal/jobs"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
)

// TestMain lets the crash-restart test re-exec this test binary as a
// real fwserved process: with FWSERVED_REEXEC set, the binary IS the
// server (run() with the args from FWSERVED_ARGS), exiting before any
// test runs.
func TestMain(m *testing.M) {
	if os.Getenv("FWSERVED_REEXEC") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("FWSERVED_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "fwserved reexec: bad FWSERVED_ARGS:", err)
			os.Exit(2)
		}
		os.Exit(run(args))
	}
	os.Exit(m.Run())
}

// startJournaledServer re-execs the test binary as fwserved on an
// ephemeral port with the given journal directory and returns the
// process and the address it reports in its "listening" log line.
func startJournaledServer(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	args, err := json.Marshal([]string{
		"-addr", "127.0.0.1:0",
		"-jobs-journal", dir,
		"-jobs-fsync", "always",
		"-jobs-workers", "2",
		"-log-format", "json",
	})
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "FWSERVED_REEXEC=1", "FWSERVED_ARGS="+string(args))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The structured "listening" line carries the resolved port.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		t.Fatal("server never logged listening")
		return nil, ""
	}
}

type crashJobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress struct {
		Total   int `json:"total"`
		Settled int `json:"settled"`
		OK      int `json:"ok"`
		Errors  int `json:"errors"`
		Skipped int `json:"skipped"`
	} `json:"progress"`
}

// TestCrashRestartResumesWithoutDuplicateSettles is the durability
// acceptance test: SIGKILL a journaled server mid-job, restart it on
// the same directory, and the job must reach a terminal state with
// every pair answered exactly once — the journal proves no settle was
// ever recomputed.
func TestCrashRestartResumesWithoutDuplicateSettles(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess servers")
	}
	dir := t.TempDir()
	cmd1, addr := startJournaledServer(t, dir)
	base := "http://" + addr

	// 2 small + 8 large policies, 45 pairs: the small-vs-small pair
	// settles almost immediately (so the kill lands mid-job, after the
	// journal has something to lose), while the large pairs keep the job
	// running long enough to be killed. The large ones are perturbed
	// variants of one base — expensive to compare, but with small
	// reports, so the whole run stays under the compaction threshold and
	// the log keeps every settle for the duplicate scan below.
	type namedPolicy struct {
		Name   string `json:"name"`
		Policy struct {
			Text string `json:"text"`
		} `json:"policy"`
	}
	var body struct {
		Schema   string        `json:"schema"`
		Policies []namedPolicy `json:"policies"`
	}
	body.Schema = "five"
	large := synth.Synthetic(synth.Config{Rules: 300, Seed: 1})
	for i := 0; i < 10; i++ {
		np := namedPolicy{Name: fmt.Sprintf("team%d", i+1)}
		switch {
		case i < 2:
			np.Policy.Text = rule.FormatPolicy(synth.Synthetic(synth.Config{Rules: 5, Seed: int64(i + 11)}))
		default:
			p, _ := synth.Perturb(large, 10, int64(i))
			np.Policy.Text = rule.FormatPolicy(p)
		}
		body.Policies = append(body.Policies, np)
	}
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var submitted crashJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.Progress.Total != 45 {
		t.Fatalf("submit: %d %+v", resp.StatusCode, submitted)
	}

	// SIGKILL the moment the journal holds at least one settle. Scanning
	// the log directly (rather than polling HTTP) keeps the window
	// between first settle and the kill as small as possible, and
	// -jobs-fsync=always means every scanned settle is already durable.
	deadline := time.Now().Add(60 * time.Second)
	for {
		refs, err := jobs.ScanSettles(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no settle ever journaled")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()
	preKill, err := jobs.ScanSettles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(preKill) == 0 {
		t.Fatal("journal lost its settles at kill")
	}
	if len(preKill) >= 45 {
		t.Fatalf("job finished before the kill (%d settles): nothing to resume", len(preKill))
	}
	t.Logf("killed mid-job with %d/45 pairs settled", len(preKill))

	// Restart on the same journal: the job must resume and finish.
	_, addr2 := startJournaledServer(t, dir)
	base2 := "http://" + addr2

	hresp, err := http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Recovery *jobs.RecoveryReport `json:"recovery"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Recovery == nil {
		t.Fatal("healthz has no recovery block on a journaled server")
	}
	if health.Recovery.JobsRecovered != 1 || health.Recovery.JobsResumed != 1 {
		t.Fatalf("recovery = %+v", health.Recovery)
	}
	if health.Recovery.PairsRestored < len(preKill) {
		t.Fatalf("restored %d pairs, journal held %d at kill", health.Recovery.PairsRestored, len(preKill))
	}

	deadline = time.Now().Add(120 * time.Second)
	var final crashJobStatus
	for {
		jr, err := http.Get(base2 + "/v1/jobs/" + submitted.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jr.StatusCode != http.StatusOK {
			t.Fatalf("poll after restart: %d", jr.StatusCode)
		}
		final = crashJobStatus{}
		if err := json.NewDecoder(jr.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		jr.Body.Close()
		if final.State == "completed" || final.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished: %+v", final)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != "completed" || final.Progress.Settled != 45 ||
		final.Progress.OK != 45 || final.Progress.Errors != 0 || final.Progress.Skipped != 0 {
		t.Fatalf("resumed job = %+v", final)
	}

	// The whole log, both lives included, must settle every pair at most
	// once: the restored pairs were served from the journal, not rerun.
	refs, err := jobs.ScanSettles(dir)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[jobs.SettleRef]bool)
	for _, r := range refs {
		if seen[r] {
			t.Fatalf("pair settled twice across the crash: %+v", r)
		}
		seen[r] = true
	}
	if len(refs) != 45 {
		t.Fatalf("journal holds %d settles, want exactly 45", len(refs))
	}
}
