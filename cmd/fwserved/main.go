// Command fwserved serves the firewall analyses over HTTP with JSON
// bodies — policy diffing, change impact, auditing, and queries — so
// CI pipelines and dashboards can call the comparison machinery without
// shelling out.
//
// Usage:
//
//	fwserved [-addr :8080] [-request-timeout 60s] [-drain-timeout 15s]
//
// Endpoints (all POST with JSON bodies; see internal/api for the types):
//
//	POST /v1/diff    {"schema":"five","a":"...","b":"..."}
//	POST /v1/impact  {"schema":"five","before":"...","after":"..."}
//	POST /v1/resolve {"schema":"five","a":"...","b":"...","decisions":{"1":"discard"}}
//	POST /v1/audit   {"schema":"five","policy":"...","complete":true}
//	POST /v1/query   {"schema":"five","policy":"...","query":"select ..."}
//	GET  /healthz
//	GET  /metrics      Prometheus text format: per-endpoint request
//	                   counts/latency/status, in-flight gauge, and
//	                   construct/shape/compare phase timings
//	GET  /debug/pprof  runtime profiles (CPU, heap, goroutines, ...)
//
// Every request is access-logged (structured, one line per request) and
// runs under panic recovery (a bug yields a 500, not a dropped
// connection). -request-timeout bounds each request's pipeline work: the
// deadline propagates through construction, shaping, and the comparison
// walk, which abort mid-walk, and the client gets 503. A client that
// disconnects early cancels its pipeline the same way.
//
// On SIGINT or SIGTERM the server stops accepting connections and
// drains in-flight requests for up to -drain-timeout before exiting
// (exit code 0 on a clean drain, 1 if connections had to be cut).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diversefw/internal/api"
	"diversefw/internal/metrics"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fwserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second,
		"per-request pipeline deadline (0 disables); timed-out requests get 503")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second,
		"how long graceful shutdown waits for in-flight requests")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwserved [-addr host:port] [-request-timeout d] [-drain-timeout d]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	reg := metrics.NewRegistry()
	handler := api.NewServer(
		api.WithMetrics(reg),
		api.WithLogger(logger),
		api.WithRequestTimeout(*requestTimeout),
	)

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// WriteTimeout must outlast the request deadline, or the connection
	// dies before the 503 can be written.
	writeTimeout := 60 * time.Second
	if *requestTimeout > 0 {
		writeTimeout = *requestTimeout + 10*time.Second
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	logger.Info("listening", "addr", ln.Addr().String(),
		"requestTimeout", *requestTimeout, "drainTimeout", *drainTimeout)
	return serve(srv, ln, stop, *drainTimeout, logger)
}

// serve runs srv on ln until it fails or a signal arrives on stop, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get up to drain to finish, and only then are connections cut.
func serve(srv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration, logger *slog.Logger) int {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			logger.Error("server failed", "err", err)
			return 1
		}
		return 0
	case sig := <-stop:
		logger.Info("shutting down", "signal", fmt.Sprint(sig), "drainTimeout", drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain deadline exceeded, cutting connections", "err", err)
			srv.Close()
			return 1
		}
		<-errCh // Serve has returned http.ErrServerClosed
		logger.Info("drained cleanly")
		return 0
	}
}
