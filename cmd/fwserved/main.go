// Command fwserved serves the firewall analyses over HTTP with JSON
// bodies — policy diffing, change impact, auditing, and queries — so
// CI pipelines and dashboards can call the comparison machinery without
// shelling out.
//
// Usage:
//
//	fwserved [-addr :8080]
//
// Endpoints (all POST with JSON bodies; see internal/api for the types):
//
//	POST /v1/diff    {"schema":"five","a":"...","b":"..."}
//	POST /v1/impact  {"schema":"five","before":"...","after":"..."}
//	POST /v1/resolve {"schema":"five","a":"...","b":"...","decisions":{"1":"discard"}}
//	POST /v1/audit   {"schema":"five","policy":"...","complete":true}
//	POST /v1/query   {"schema":"five","policy":"...","query":"select ..."}
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"diversefw/internal/api"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwserved [-addr host:port]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.NewServer(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "fwserved: listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "fwserved:", err)
		return 1
	}
	return 0
}
