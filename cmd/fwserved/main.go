// Command fwserved serves the firewall analyses over HTTP with JSON
// bodies — policy diffing, change impact, auditing, and queries — so
// CI pipelines and dashboards can call the comparison machinery without
// shelling out.
//
// Usage:
//
//	fwserved [-addr :8080] [-request-timeout 60s] [-drain-timeout 15s]
//	         [-compile-cache-mb 128] [-report-cache-mb 32]
//	         [-max-fdd-nodes 2000000] [-max-inflight 4*cores]
//	         [-admission-queue 64] [-queue-deadline 5s]
//	         [-shed-threshold 1.0] [-max-per-client 16]
//	         [-jobs-workers 4] [-jobs-retention 15m]
//	         [-log-format json|text] [-log-level info]
//	         [-trace-capacity 128] [-slow-trace-threshold 250ms]
//
// Resource governance (docs/ROBUSTNESS.md): every request runs under a
// work budget (-max-fdd-nodes caps the pipeline's materialized FDD
// nodes and edge splits; over-budget analyses return 422
// policy_too_complex), and every /v1/* request passes admission control
// (-max-inflight concurrent slots with a bounded queue; overflow and
// queue timeouts return 503 server_overloaded with Retry-After, a
// per-client cap returns 429 client_over_limit). /healthz reports
// status ok|degraded|draining.
//
// Endpoints (see docs/API.md and docs/OBSERVABILITY.md for the full
// reference):
//
//	POST /v1/diff         {"schema":"five","a":"...","b":"..."}
//	POST /v1/crosscompare {"schema":"five","policies":[{"name":"a","policy":"..."},...]}
//	POST /v1/impact       {"schema":"five","before":"...","after":"..."}
//	POST /v1/resolve      {"schema":"five","a":"...","b":"...","decisions":{"1":"discard"}}
//	POST /v1/audit        {"schema":"five","policy":"...","complete":true}
//	POST /v1/query        {"schema":"five","policy":"...","query":"select ..."}
//	POST /v1/jobs         submit an async crosscompare/batchdiff job -> 202 + job ID
//	GET  /v1/jobs         list jobs; GET /v1/jobs/{id} polls status, progress,
//	                      and partial results; DELETE /v1/jobs/{id} cancels
//	GET  /v1/version   build info, schema names, limits, cache stats
//	GET  /healthz      liveness + cache readiness + SLO summary
//	                   ("slo": ok|warn|burning)
//	GET  /metrics      Prometheus text format: per-endpoint request
//	                   counts/latency/status, in-flight gauge,
//	                   construct/shape/compare phase timings, span
//	                   durations, engine cache counters, fwslo_* burn
//	                   rates, and fwproc_* runtime gauges; scraping with
//	                   Accept: application/openmetrics-text adds
//	                   trace-ID exemplars on latency histogram buckets
//	GET  /debug/slo    live SLO report: per-objective fast/slow window
//	                   burn rates, budget remaining, status
//	GET  /debug/traces recent + slowest request traces as span trees
//	                   (?format=chrome for about:tracing / Perfetto;
//	                   ?endpoint= and ?min_ms= narrow the listing)
//	GET  /debug/pprof  runtime profiles (CPU, heap, goroutines, ...)
//
// Every /v1/* request is traced end to end: the response carries
// X-Trace-ID and a Server-Timing header with per-phase durations, and
// the trace (construct/shape/compare spans annotated with FDD node
// counts, shaping splits, discrepancy counts) is retained in a bounded
// ring — the slowest are pinned past ring eviction. -trace-capacity
// sizes the ring; -slow-trace-threshold sets what counts as slow.
//
// All analysis requests run through a content-addressed compilation
// cache (internal/engine): repeated policies are parsed and constructed
// once, repeated pairs are compared once, and concurrent identical
// requests are deduplicated. -compile-cache-mb and -report-cache-mb
// bound the two caches' resident memory.
//
// Every request is access-logged (structured, one line per request) and
// runs under panic recovery (a bug yields a 500, not a dropped
// connection). -request-timeout bounds each request's pipeline work: the
// deadline propagates through construction, shaping, and the comparison
// walk, which abort mid-walk, and the client gets 503. A client that
// disconnects early cancels its pipeline the same way.
//
// On SIGINT or SIGTERM the server stops accepting connections and
// drains in-flight requests for up to -drain-timeout before exiting
// (exit code 0 on a clean drain, 1 if connections had to be cut).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"diversefw/internal/admission"
	"diversefw/internal/api"
	"diversefw/internal/engine"
	"diversefw/internal/guard"
	"diversefw/internal/jobs"
	"diversefw/internal/metrics"
	"diversefw/internal/slo"
	"diversefw/internal/trace"
)

// Resource-governance defaults (see docs/ROBUSTNESS.md for tuning).
const (
	// DefaultMaxFDDNodes caps one request's pipeline at ~2M materialized
	// FDD nodes (~256 MiB at the guard's 128-byte node estimate) —
	// orders of magnitude above any well-formed policy, well below what
	// an adversarial blowup needs.
	DefaultMaxFDDNodes = 2_000_000
	// DefaultAdmissionQueue bounds waiting analysis requests.
	DefaultAdmissionQueue = 64
	// DefaultQueueDeadline bounds one request's wait for a slot.
	DefaultQueueDeadline = 5 * time.Second
	// DefaultMaxPerClient caps one client's concurrent analyses.
	DefaultMaxPerClient = 16
)

// DefaultMaxInflight is the admission concurrency cap default: the
// pipeline is CPU-bound, so a small multiple of the core count keeps
// the queue (not the scheduler) absorbing bursts.
var DefaultMaxInflight = 4 * runtime.GOMAXPROCS(0)

func main() {
	os.Exit(run(os.Args[1:]))
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags. JSON is the default so log lines land in collectors
// ready to index on requestId/traceId without a parsing stage.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: use debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q: use json or text", format)
	}
}

func run(args []string) int {
	fs := flag.NewFlagSet("fwserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second,
		"per-request pipeline deadline (0 disables); timed-out requests get 503")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second,
		"how long graceful shutdown waits for in-flight requests")
	compileCacheMB := fs.Int64("compile-cache-mb", engine.DefaultCompileCacheBytes>>20,
		"compiled-policy (FDD) cache budget in MiB")
	reportCacheMB := fs.Int64("report-cache-mb", engine.DefaultReportCacheBytes>>20,
		"pairwise comparison-report cache budget in MiB")
	logFormat := fs.String("log-format", "json", "log output format: json or text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	traceCapacity := fs.Int("trace-capacity", api.DefaultTraceCapacity,
		"how many recent request traces /debug/traces retains")
	slowTraceThreshold := fs.Duration("slow-trace-threshold", api.DefaultSlowTraceThreshold,
		"requests at least this slow are pinned in the slow-trace list (0 disables)")
	maxFDDNodes := fs.Int64("max-fdd-nodes", DefaultMaxFDDNodes,
		"per-request pipeline work budget in FDD nodes (and edge splits); over-budget requests get 422 policy_too_complex (0 disables)")
	maxInflight := fs.Int("max-inflight", DefaultMaxInflight,
		"admission control: max concurrently running analysis requests (0 disables admission control)")
	admissionQueue := fs.Int("admission-queue", DefaultAdmissionQueue,
		"admission control: max analysis requests waiting for a slot; arrivals beyond the shed point get 503 server_overloaded")
	queueDeadline := fs.Duration("queue-deadline", DefaultQueueDeadline,
		"admission control: max time a request may wait in the queue before being shed (0 waits as long as the request allows)")
	shedThreshold := fs.Float64("shed-threshold", 1.0,
		"admission control: shed new arrivals once the queue is this full (fraction of -admission-queue, in (0,1])")
	maxPerClient := fs.Int("max-per-client", DefaultMaxPerClient,
		"admission control: max concurrent analysis requests per client address; over-cap requests get 429 client_over_limit (0 disables)")
	jobsWorkers := fs.Int("jobs-workers", 4,
		"async jobs (/v1/jobs): worker pool size for pair comparisons")
	jobsRetention := fs.Duration("jobs-retention", 15*time.Minute,
		"async jobs: how long finished jobs stay pollable before being purged")
	jobsJournal := fs.String("jobs-journal", "",
		"async jobs: directory for the crash-safe job journal; on restart, journaled jobs are recovered and unfinished ones resume (empty disables durability)")
	jobsFsync := fs.String("jobs-fsync", "batch",
		"async jobs journal fsync policy: always (sync every record), batch (sync on a short timer), or never (leave it to the OS)")
	jobsRetryMax := fs.Int("jobs-retry-max", 3,
		"async jobs: max attempts per pair; a pair still failing transiently after this many runs is quarantined as an error entry (1 disables retries)")
	jobsRetryBase := fs.Duration("jobs-retry-base", 50*time.Millisecond,
		"async jobs: base delay for per-pair retry backoff (doubles per attempt, capped, jittered)")
	sloObjectives := fs.String("slo-objectives", "",
		"path to an objectives JSON file (see slo/objectives.json); empty uses the built-in defaults")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwserved [-addr host:port] [-request-timeout d] [-drain-timeout d] [-compile-cache-mb n] [-report-cache-mb n] [-max-fdd-nodes n] [-max-inflight n] [-admission-queue n] [-queue-deadline d] [-shed-threshold f] [-max-per-client n] [-jobs-workers n] [-jobs-retention d] [-jobs-journal dir] [-jobs-fsync always|batch|never] [-jobs-retry-max n] [-jobs-retry-base d] [-slo-objectives file] [-log-format json|text] [-log-level l] [-trace-capacity n] [-slow-trace-threshold d]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwserved:", err)
		return 2
	}
	reg := metrics.NewRegistry()
	eng := engine.New(engine.Config{
		CompileCacheBytes: *compileCacheMB << 20,
		ReportCacheBytes:  *reportCacheMB << 20,
		Metrics:           reg,
		Limits: guard.Limits{
			// Splits share the node cap: every split replicates a
			// subgraph, so the two resources blow up together.
			MaxFDDNodes:   *maxFDDNodes,
			MaxEdgeSplits: *maxFDDNodes,
		},
	})
	traces := trace.NewBuffer(*traceCapacity, *slowTraceThreshold, api.DefaultSlowTraceCapacity)
	jobsCfg := jobs.Config{
		Workers:   *jobsWorkers,
		Retention: *jobsRetention,
		RetryMax:  *jobsRetryMax,
		RetryBase: *jobsRetryBase,
	}
	if *jobsJournal != "" {
		fsyncPolicy, err := jobs.ParseFsyncPolicy(*jobsFsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwserved: -jobs-fsync:", err)
			return 2
		}
		store, err := jobs.OpenJournal(*jobsJournal, jobs.JournalOptions{Fsync: fsyncPolicy})
		if err != nil {
			logger.Error("jobs journal open failed", "dir", *jobsJournal, "err", err)
			return 1
		}
		rep := store.RecoveryReport()
		logger.Info("jobs journal recovered",
			"dir", *jobsJournal, "fsync", string(fsyncPolicy),
			"jobsRecovered", rep.JobsRecovered, "jobsResumed", rep.JobsResumed,
			"pairsRestored", rep.PairsRestored, "recordsApplied", rep.RecordsApplied,
			"corruptRecordsSkipped", rep.CorruptRecordsSkipped,
			"tornBytesTruncated", rep.TornBytesTruncated)
		jobsCfg.Store = store
	}
	opts := []api.Option{
		api.WithEngine(eng),
		api.WithMetrics(reg),
		api.WithLogger(logger),
		api.WithRequestTimeout(*requestTimeout),
		api.WithTracing(traces),
		api.WithJobs(jobsCfg),
	}
	if *sloObjectives != "" {
		cfg, err := slo.LoadFile(*sloObjectives)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwserved: -slo-objectives:", err)
			return 2
		}
		opts = append(opts, api.WithSLO(slo.NewStore(cfg)))
	}
	if *maxInflight > 0 {
		opts = append(opts, api.WithAdmission(admission.Config{
			MaxInFlight:   *maxInflight,
			MaxQueue:      *admissionQueue,
			QueueDeadline: *queueDeadline,
			ShedThreshold: *shedThreshold,
			MaxPerClient:  *maxPerClient,
		}))
	}
	handler := api.NewServer(opts...)

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// WriteTimeout must outlast the request deadline, or the connection
	// dies before the 503 can be written.
	writeTimeout := 60 * time.Second
	if *requestTimeout > 0 {
		writeTimeout = *requestTimeout + 10*time.Second
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	logger.Info("listening", "addr", ln.Addr().String(),
		"requestTimeout", *requestTimeout, "drainTimeout", *drainTimeout)
	code := serve(srv, ln, stop, *drainTimeout, handler.BeginDrain, logger)
	// After the HTTP drain: cancel whatever async jobs are still running
	// and wait the workers out, so the process never exits mid-pair.
	handler.Close()
	return code
}

// serve runs srv on ln until it fails or a signal arrives on stop, then
// shuts down gracefully: beginDrain (when non-nil) flips the app into
// draining first — /healthz turns "draining" and admission control
// rejects new analysis work — then the listener closes, in-flight
// requests get up to drain to finish, and only then are connections cut.
func serve(srv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration, beginDrain func(), logger *slog.Logger) int {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			logger.Error("server failed", "err", err)
			return 1
		}
		return 0
	case sig := <-stop:
		logger.Info("shutting down", "signal", fmt.Sprint(sig), "drainTimeout", drain)
		if beginDrain != nil {
			beginDrain()
		}
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain deadline exceeded, cutting connections", "err", err)
			srv.Close()
			return 1
		}
		<-errCh // Serve has returned http.ErrServerClosed
		logger.Info("drained cleanly")
		return 0
	}
}
