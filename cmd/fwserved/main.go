// Command fwserved serves the firewall analyses over HTTP with JSON
// bodies — policy diffing, change impact, auditing, and queries — so
// CI pipelines and dashboards can call the comparison machinery without
// shelling out.
//
// Usage:
//
//	fwserved [-addr :8080] [-request-timeout 60s] [-drain-timeout 15s]
//	         [-compile-cache-mb 128] [-report-cache-mb 32]
//	         [-log-format json|text] [-log-level info]
//	         [-trace-capacity 128] [-slow-trace-threshold 250ms]
//
// Endpoints (see docs/API.md and docs/OBSERVABILITY.md for the full
// reference):
//
//	POST /v1/diff         {"schema":"five","a":"...","b":"..."}
//	POST /v1/crosscompare {"schema":"five","policies":[{"name":"a","policy":"..."},...]}
//	POST /v1/impact       {"schema":"five","before":"...","after":"..."}
//	POST /v1/resolve      {"schema":"five","a":"...","b":"...","decisions":{"1":"discard"}}
//	POST /v1/audit        {"schema":"five","policy":"...","complete":true}
//	POST /v1/query        {"schema":"five","policy":"...","query":"select ..."}
//	GET  /v1/version   build info, schema names, limits, cache stats
//	GET  /healthz      liveness + cache readiness
//	GET  /metrics      Prometheus text format: per-endpoint request
//	                   counts/latency/status, in-flight gauge,
//	                   construct/shape/compare phase timings, span
//	                   durations, and engine cache counters
//	GET  /debug/traces recent + slowest request traces as span trees
//	                   (?format=chrome for about:tracing / Perfetto)
//	GET  /debug/pprof  runtime profiles (CPU, heap, goroutines, ...)
//
// Every /v1/* request is traced end to end: the response carries
// X-Trace-ID and a Server-Timing header with per-phase durations, and
// the trace (construct/shape/compare spans annotated with FDD node
// counts, shaping splits, discrepancy counts) is retained in a bounded
// ring — the slowest are pinned past ring eviction. -trace-capacity
// sizes the ring; -slow-trace-threshold sets what counts as slow.
//
// All analysis requests run through a content-addressed compilation
// cache (internal/engine): repeated policies are parsed and constructed
// once, repeated pairs are compared once, and concurrent identical
// requests are deduplicated. -compile-cache-mb and -report-cache-mb
// bound the two caches' resident memory.
//
// Every request is access-logged (structured, one line per request) and
// runs under panic recovery (a bug yields a 500, not a dropped
// connection). -request-timeout bounds each request's pipeline work: the
// deadline propagates through construction, shaping, and the comparison
// walk, which abort mid-walk, and the client gets 503. A client that
// disconnects early cancels its pipeline the same way.
//
// On SIGINT or SIGTERM the server stops accepting connections and
// drains in-flight requests for up to -drain-timeout before exiting
// (exit code 0 on a clean drain, 1 if connections had to be cut).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"diversefw/internal/api"
	"diversefw/internal/engine"
	"diversefw/internal/metrics"
	"diversefw/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags. JSON is the default so log lines land in collectors
// ready to index on requestId/traceId without a parsing stage.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q: use debug, info, warn, or error", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q: use json or text", format)
	}
}

func run(args []string) int {
	fs := flag.NewFlagSet("fwserved", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second,
		"per-request pipeline deadline (0 disables); timed-out requests get 503")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second,
		"how long graceful shutdown waits for in-flight requests")
	compileCacheMB := fs.Int64("compile-cache-mb", engine.DefaultCompileCacheBytes>>20,
		"compiled-policy (FDD) cache budget in MiB")
	reportCacheMB := fs.Int64("report-cache-mb", engine.DefaultReportCacheBytes>>20,
		"pairwise comparison-report cache budget in MiB")
	logFormat := fs.String("log-format", "json", "log output format: json or text")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	traceCapacity := fs.Int("trace-capacity", api.DefaultTraceCapacity,
		"how many recent request traces /debug/traces retains")
	slowTraceThreshold := fs.Duration("slow-trace-threshold", api.DefaultSlowTraceThreshold,
		"requests at least this slow are pinned in the slow-trace list (0 disables)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwserved [-addr host:port] [-request-timeout d] [-drain-timeout d] [-compile-cache-mb n] [-report-cache-mb n] [-log-format json|text] [-log-level l] [-trace-capacity n] [-slow-trace-threshold d]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwserved:", err)
		return 2
	}
	reg := metrics.NewRegistry()
	eng := engine.New(engine.Config{
		CompileCacheBytes: *compileCacheMB << 20,
		ReportCacheBytes:  *reportCacheMB << 20,
		Metrics:           reg,
	})
	traces := trace.NewBuffer(*traceCapacity, *slowTraceThreshold, api.DefaultSlowTraceCapacity)
	handler := api.NewServer(
		api.WithEngine(eng),
		api.WithMetrics(reg),
		api.WithLogger(logger),
		api.WithRequestTimeout(*requestTimeout),
		api.WithTracing(traces),
	)

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// WriteTimeout must outlast the request deadline, or the connection
	// dies before the 503 can be written.
	writeTimeout := 60 * time.Second
	if *requestTimeout > 0 {
		writeTimeout = *requestTimeout + 10*time.Second
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		return 1
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(stop)
	logger.Info("listening", "addr", ln.Addr().String(),
		"requestTimeout", *requestTimeout, "drainTimeout", *drainTimeout)
	return serve(srv, ln, stop, *drainTimeout, logger)
}

// serve runs srv on ln until it fails or a signal arrives on stop, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get up to drain to finish, and only then are connections cut.
func serve(srv *http.Server, ln net.Listener, stop <-chan os.Signal, drain time.Duration, logger *slog.Logger) int {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			logger.Error("server failed", "err", err)
			return 1
		}
		return 0
	case sig := <-stop:
		logger.Info("shutting down", "signal", fmt.Sprint(sig), "drainTimeout", drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("drain deadline exceeded, cutting connections", "err", err)
			srv.Close()
			return 1
		}
		<-errCh // Serve has returned http.ErrServerClosed
		logger.Info("drained cleanly")
		return 0
	}
}
