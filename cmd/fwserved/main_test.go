package main

import (
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestRunFlagError(t *testing.T) {
	t.Parallel()
	if code := run([]string{"-bogus"}); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
}

// TestGracefulShutdownDrainsInFlight: a SIGTERM mid-request must let the
// in-flight request complete (200, full body) while immediately closing
// the listener to new connections, and serve must exit 0.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	t.Parallel()
	var entered sync.Once
	enteredCh := make(chan struct{})
	release := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered.Do(func() { close(enteredCh) })
		<-release
		w.Write([]byte("done"))
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	stop := make(chan os.Signal, 1)
	exitCh := make(chan int, 1)
	go func() { exitCh <- serve(srv, ln, stop, 5*time.Second, nil, discardLogger()) }()

	respCh := make(chan *http.Response, 1)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			errCh <- err
			return
		}
		respCh <- resp
	}()

	<-enteredCh // the request is in flight
	stop <- syscall.SIGTERM

	// The listener must close promptly: new connections get refused
	// while the old request is still draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after SIGTERM")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The in-flight request still completes.
	close(release)
	select {
	case resp := <-respCh:
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "done" {
			t.Fatalf("in-flight request: status %d body %q", resp.StatusCode, body)
		}
	case err := <-errCh:
		t.Fatalf("in-flight request failed: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete")
	}

	select {
	case code := <-exitCh:
		if code != 0 {
			t.Fatalf("serve exit = %d, want 0", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not exit after drain")
	}
}

// TestShutdownDrainDeadline: a request that outlives the drain window
// forces connections to be cut and serve to exit 1.
func TestShutdownDrainDeadline(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	defer close(release)
	var entered sync.Once
	enteredCh := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		entered.Do(func() { close(enteredCh) })
		<-release
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	exitCh := make(chan int, 1)
	go func() { exitCh <- serve(srv, ln, stop, 50*time.Millisecond, nil, discardLogger()) }()

	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-enteredCh
	stop <- syscall.SIGTERM

	select {
	case code := <-exitCh:
		if code != 1 {
			t.Fatalf("serve exit = %d, want 1 after drain deadline", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not exit after drain deadline")
	}
}
