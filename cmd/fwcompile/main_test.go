package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diversefw/internal/trace"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwcompile"}, args...)
	return run()
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	defer func() { os.Stdout = old }()
	path := filepath.Join(t.TempDir(), "stdout")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	fn()
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

const policy = `
src in 224.168.0.0/16 -> discard
dst in 192.168.0.1 && dport in 25 && proto in tcp -> accept
dst in 192.168.0.1 -> discard
any -> accept
`

func TestCompileNormalizes(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.fw", policy)
	out := captureStdout(t, func() {
		if code := withArgs(t, "-stats", in); code != 0 {
			t.Fatalf("exit = %d", code)
		}
	})
	if !strings.Contains(out, "->") {
		t.Fatalf("no rules in output:\n%s", out)
	}
	// With -compact too.
	out = captureStdout(t, func() {
		if code := withArgs(t, "-compact", in); code != 0 {
			t.Fatalf("compact exit = %d", code)
		}
	})
	if out == "" {
		t.Fatal("no compacted output")
	}
}

func TestCompileFDDRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.fw", policy)
	fddText := captureStdout(t, func() {
		if code := withArgs(t, "-tofdd", in); code != 0 {
			t.Fatalf("tofdd exit = %d", code)
		}
	})
	if !strings.HasPrefix(fddText, "fdd v1") {
		t.Fatalf("bad fdd header:\n%s", fddText)
	}
	fddFile := writeFile(t, dir, "in.fdd", fddText)
	rules := captureStdout(t, func() {
		if code := withArgs(t, "-fromfdd", fddFile); code != 0 {
			t.Fatalf("fromfdd exit = %d", code)
		}
	})
	if !strings.Contains(rules, "224.168.0.0/16") {
		t.Fatalf("expected the malicious block in the compiled rules:\n%s", rules)
	}
}

// TestCompileTraceFile checks -trace captures construction and rule
// generation as spans.
func TestCompileTraceFile(t *testing.T) {
	dir := t.TempDir()
	in := writeFile(t, dir, "in.fw", policy)
	out := filepath.Join(dir, "trace.json")
	captureStdout(t, func() {
		if code := withArgs(t, "-trace", out, in); code != 0 {
			t.Fatalf("exit = %d", code)
		}
	})
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc trace.FileDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].Root.Name != "fwcompile" {
		t.Fatalf("unexpected trace doc: %+v", doc)
	}
	for _, name := range []string{"construct", "generate"} {
		if _, ok := doc.Traces[0].Root.Find(name); !ok {
			t.Fatalf("trace missing %q span:\n%s", name, raw)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	dir := t.TempDir()
	if code := withArgs(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code := withArgs(t, filepath.Join(dir, "missing.fw")); code != 2 {
		t.Fatalf("missing input: exit = %d, want 2", code)
	}
	partial := writeFile(t, dir, "partial.fw", "dport in 25 -> accept\n")
	if code := withArgs(t, partial); code != 2 {
		t.Fatalf("non-comprehensive: exit = %d, want 2", code)
	}
	badFDD := writeFile(t, dir, "bad.fdd", "not an fdd\n")
	if code := withArgs(t, "-fromfdd", badFDD); code != 2 {
		t.Fatalf("bad fdd: exit = %d, want 2", code)
	}
}
