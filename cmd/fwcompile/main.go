// Command fwcompile runs the structured-design tooling on a policy file:
// it normalizes a policy through its FDD (construction + reduction +
// compact rule generation, the method of the paper's reference [12]) and
// optionally removes all redundant rules first ([19]). The output is an
// equivalent, typically smaller policy.
//
// Usage:
//
//	fwcompile [-schema five|four|paper] [-format name] [-compact] in.fw > out.fw
//	fwcompile -fromfdd design.fdd > out.fw   # compile an FDD design (§7.2)
//	fwcompile -tofdd in.fw > out.fdd         # export the reduced FDD
//
// -compact additionally runs complete redundancy removal on the generated
// rules. -trace writes the run's span tree (construct + generate, with
// FDD node counts) to a JSON file; see docs/OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"diversefw/internal/cli"
	"diversefw/internal/fdd"
	"diversefw/internal/gen"
	"diversefw/internal/redundancy"
	"diversefw/internal/rule"
	"diversefw/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwcompile", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	format := fs.String("format", "text", "input format: "+cli.FormatNames())
	chain := fs.String("chain", "", "chain to read for iptables/nftables inputs")
	compact := fs.Bool("compact", false, "also remove redundant rules from the generated policy")
	stats := fs.Bool("stats", false, "print FDD statistics to stderr")
	fromFDD := fs.Bool("fromfdd", false, "input is an FDD file, not a policy file")
	toFDD := fs.Bool("tofdd", false, "output the reduced FDD instead of rules")
	traceFile := fs.String("trace", "", "write the run's span tree to this file as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwcompile [-schema name] [-format name] [-compact] [-stats] [-fromfdd] [-tofdd] [-trace file] in > out")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwcompile:", err)
		return 2
	}

	ctx := context.Background()
	var tr *trace.Trace
	if *traceFile != "" {
		ctx, tr = trace.New(ctx, "fwcompile", "")
		defer func() {
			tr.Finish()
			if werr := trace.WriteFileJSON(*traceFile, tr.Snapshot()); werr != nil {
				fmt.Fprintln(os.Stderr, "fwcompile: writing trace:", werr)
			}
		}()
	}

	var f *fdd.FDD
	var inRules int
	if *fromFDD {
		in, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwcompile:", err)
			return 2
		}
		f, err = fdd.Unmarshal(in, schema)
		in.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwcompile:", err)
			return 2
		}
	} else {
		p, err := cli.LoadPolicyFormat(schema, fs.Arg(0), *format, *chain)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwcompile:", err)
			return 2
		}
		inRules = p.Size()
		f, err = fdd.ConstructContext(ctx, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwcompile:", err)
			return 2
		}
	}
	if *stats {
		st := f.Stats()
		fmt.Fprintf(os.Stderr, "fwcompile: FDD: %d nodes, %d edges, %d paths, depth %d\n",
			st.Nodes, st.Edges, st.Paths, st.Depth)
	}
	if *toFDD {
		if err := fdd.Marshal(os.Stdout, f.Reduce()); err != nil {
			fmt.Fprintln(os.Stderr, "fwcompile:", err)
			return 2
		}
		return 0
	}
	_, genSpan := trace.Start(ctx, "generate")
	out, err := gen.Generate(f)
	genSpan.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwcompile:", err)
		return 2
	}
	genSpan.SetAttr("rules", out.Size())
	if *compact {
		compacted, removed, err := redundancy.RemoveAll(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwcompile:", err)
			return 2
		}
		if len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "fwcompile: removed %d redundant rules\n", len(removed))
		}
		out = compacted
	}
	fmt.Fprintf(os.Stderr, "fwcompile: %d rules in, %d rules out\n", inRules, out.Size())
	if err := rule.WritePolicy(os.Stdout, out); err != nil {
		fmt.Fprintln(os.Stderr, "fwcompile:", err)
		return 2
	}
	return 0
}
