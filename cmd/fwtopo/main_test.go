package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwtopo"}, args...)
	return run()
}

func fixtures(t *testing.T) (dir string) {
	dir = t.TempDir()
	writeFile(t, dir, "gw.fw", `
dst in 10.0.1.10 && dport in 443 && proto in tcp -> accept
dst in 10.0.2.0/24 -> accept
any -> discard
`)
	writeFile(t, dir, "inner.fw", `
dst in 10.0.2.20 && dport in 5432 && proto in tcp -> accept
any -> discard
`)
	writeFile(t, dir, "topo.txt", `
# two-firewall network
zone internet
zone dmz
zone lan
link internet dmz forward=gw.fw backward=-
link dmz lan forward=inner.fw
`)
	writeFile(t, dir, "flat.fw", `
dst in 10.0.2.20 && dport in 5432 && proto in tcp -> accept
any -> discard
`)
	writeFile(t, dir, "topo2.txt", `
zone internet
zone dmz
zone lan
link internet dmz forward=flat.fw
link dmz lan
`)
	return dir
}

func TestEndToEndPolicy(t *testing.T) {
	dir := fixtures(t)
	topo := filepath.Join(dir, "topo.txt")
	if code := withArgs(t, topo, "internet", "lan"); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestDiffTopologies(t *testing.T) {
	dir := fixtures(t)
	topo := filepath.Join(dir, "topo.txt")
	topo2 := filepath.Join(dir, "topo2.txt")
	// internet -> lan: both allow only the database flow; equivalent.
	if code := withArgs(t, "-diff", topo2, topo, "internet", "lan"); code != 0 {
		t.Fatalf("internet->lan diff exit = %d, want 0 (equivalent)", code)
	}
	// internet -> dmz: topo admits 443 to the web server, topo2 does not.
	if code := withArgs(t, "-diff", topo2, topo, "internet", "dmz"); code != 1 {
		t.Fatalf("internet->dmz diff exit = %d, want 1 (differs)", code)
	}
}

func TestTopoErrors(t *testing.T) {
	dir := fixtures(t)
	topo := filepath.Join(dir, "topo.txt")
	if code := withArgs(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code := withArgs(t, topo, "internet", "mars"); code != 2 {
		t.Fatalf("unknown zone: exit = %d, want 2", code)
	}
	if code := withArgs(t, filepath.Join(dir, "missing.txt"), "a", "b"); code != 2 {
		t.Fatalf("missing topology: exit = %d, want 2", code)
	}
	bad := writeFile(t, dir, "bad.txt", "zonk internet\n")
	if code := withArgs(t, bad, "a", "b"); code != 2 {
		t.Fatalf("bad directive: exit = %d, want 2", code)
	}
	missing := writeFile(t, dir, "missingpolicy.txt", "zone a\nzone b\nlink a b forward=nope.fw\n")
	if code := withArgs(t, missing, "a", "b"); code != 2 {
		t.Fatalf("missing policy file: exit = %d, want 2", code)
	}
}
