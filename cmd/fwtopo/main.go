// Command fwtopo computes end-to-end filtering behaviour across a
// network of firewalls (the filtering-postures setting of references
// [15] and [5]): given a topology file, it composes the policies along
// the unique path between two zones, or compares two candidate
// topologies' end-to-end behaviour — diverse design at the network level.
//
// Usage:
//
//	fwtopo [-schema five] topo.txt from to            # print the end-to-end policy
//	fwtopo -diff other.txt topo.txt from to           # compare two topologies
//
// Policy paths inside a topology file are resolved relative to the file.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"diversefw/internal/cli"
	"diversefw/internal/compare"
	"diversefw/internal/field"
	"diversefw/internal/netmodel"
	"diversefw/internal/rule"
	"diversefw/internal/textio"
)

func main() {
	os.Exit(run())
}

func loadTopology(schema *field.Schema, path string) (*netmodel.Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dir := filepath.Dir(path)
	return netmodel.ParseTopology(f, schema, func(p string) (*rule.Policy, error) {
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		return cli.LoadPolicy(schema, p)
	})
}

func run() int {
	fs := flag.NewFlagSet("fwtopo", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	diffWith := fs.String("diff", "", "second topology file: compare end-to-end behaviours")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwtopo [-schema name] [-diff other.txt] topo.txt from-zone to-zone")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 3 {
		fs.Usage()
		return 2
	}
	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwtopo:", err)
		return 2
	}
	top, err := loadTopology(schema, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwtopo:", err)
		return 2
	}
	from, to := fs.Arg(1), fs.Arg(2)
	e2e, err := top.EndToEnd(from, to)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwtopo:", err)
		return 2
	}

	if *diffWith == "" {
		if err := rule.WritePolicy(os.Stdout, e2e); err != nil {
			fmt.Fprintln(os.Stderr, "fwtopo:", err)
			return 2
		}
		return 0
	}

	other, err := loadTopology(schema, *diffWith)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwtopo:", err)
		return 2
	}
	otherE2E, err := other.EndToEnd(from, to)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwtopo:", err)
		return 2
	}
	report, err := compare.Diff(e2e, otherE2E)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwtopo:", err)
		return 2
	}
	if err := textio.WriteDiscrepancyTable(os.Stdout, schema, report.Discrepancies,
		filepath.Base(fs.Arg(0)), filepath.Base(*diffWith)); err != nil {
		fmt.Fprintln(os.Stderr, "fwtopo:", err)
		return 2
	}
	if report.Equivalent() {
		return 0
	}
	return 1
}
