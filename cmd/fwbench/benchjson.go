package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"diversefw/internal/calibrate"
	"diversefw/internal/compare"
	"diversefw/internal/engine"
	"diversefw/internal/fdd"
	"diversefw/internal/jobs"
	"diversefw/internal/rule"
	"diversefw/internal/shape"
	"diversefw/internal/synth"
	"diversefw/internal/trace"
)

// benchSchema identifies the BENCH_*.json format; bump it on any
// incompatible change so regression tooling can refuse to compare apples
// to oranges.
const benchSchema = "fwbench-json/v1"

// phaseResult is one measured pipeline phase, in testing.Benchmark units.
type phaseResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// benchReport is the machine-readable performance snapshot written to
// results/BENCH_<n>.json. Each file is immutable once written; the
// sequence of files is the repo's performance trajectory.
type benchReport struct {
	Schema     string        `json:"schema"`
	GitCommit  string        `json:"git_commit"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	When       string        `json:"when"`
	Rules      int           `json:"rules"`
	Trials     int           `json:"trials"`
	Phases     []phaseResult `json:"phases"`
	// Baseline is the path of the BENCH file these numbers were compared
	// against, and SpeedupVsBaseline maps phase name to
	// baseline_ns / current_ns (>1 means this snapshot is faster).
	Baseline          string             `json:"baseline,omitempty"`
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`
	// TracedOverheadPct is (diff_end_to_end_traced / diff_end_to_end - 1)
	// * 100: what carrying a live span tree through the pipeline costs.
	TracedOverheadPct float64 `json:"traced_overhead_pct,omitempty"`
	// DurableOverheadPct is what journaling the job lifecycle at
	// fsync=batch costs over the in-memory store on the cross-comparison
	// workload, as (durable/in-memory - 1) * 100. It is measured by
	// measureDurableOverhead's interleaved pairs, not as a ratio of the
	// two independently-timed phases: this box's timings drift by more
	// between phases than the effect being measured.
	DurableOverheadPct float64 `json:"durable_overhead_pct,omitempty"`
	// SpanStats records, from one traced run of the benchmark pair, the
	// numeric span attributes summed per span name (construct runs once
	// per policy, so its stats are the pair's totals) — the deep FDD
	// shape of the workload alongside its timings.
	SpanStats map[string]map[string]int64 `json:"span_stats,omitempty"`
	// Overload is the admission-control measurement: offered load above
	// capacity, shed rate, and latency of the admitted requests.
	Overload *overloadResult `json:"overload,omitempty"`
	// CalibrationNsPerOp is the ns/op of a fixed allocation-free integer
	// workload measured alongside the phases. It captures the machine's
	// speed at snapshot time (host frequency scaling and noisy
	// neighbors shift this box's timings by tens of percent between
	// sessions with byte-identical allocation profiles), so the gate
	// can compare code speed rather than machine speed.
	CalibrationNsPerOp int64 `json:"calibration_ns_per_op,omitempty"`
}

// measureDurableOverhead times the cross-comparison workload against
// the in-memory store and against a journaled store at fsync=batch,
// and returns the median paired overhead in percent. The measurement is
// shaped around this box's noise, which arrives as multi-second bursts
// that slow everything by tens of percent:
//
//   - Many short paired runs: each pair is an 8-policy job (~a tenth
//     of a second per side), so a noise burst usually covers both sides
//     of a pair and cancels in the ratio instead of landing on one
//     side; 24 pairs give the median room to shrug off the pairs a
//     burst boundary does split. Single independently-timed phases —
//     and even a handful of 16-policy pairs — swing by more than the
//     effect being measured.
//
//   - Alternating order (mem-first on even pairs, durable-first on
//     odd): a monotonic ramp in machine speed biases half the pairs
//     each way and cancels in the median.
//
//   - Steady state: both coordinators live across all the runs, the
//     way a server holds one journal across thousands of jobs. Per-job
//     cost therefore includes settle/finalize journaling and any
//     compaction the accumulated log triggers, but not an open and an
//     fsync-close of a whole journal life per job.
func measureDurableOverhead() float64 {
	const pairs = 24
	const nPolicies, jobRules = 8, 20
	root, err := os.MkdirTemp("", "fwbench-journal-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "durable overhead: %v\n", err)
		return 0
	}
	defer os.RemoveAll(root)
	st, err := jobs.OpenJournal(root, jobs.JournalOptions{Fsync: jobs.FsyncBatch})
	if err != nil {
		fmt.Fprintf(os.Stderr, "durable overhead: %v\n", err)
		return 0
	}
	memCoord := jobs.New(engine.New(engine.Config{}), jobs.Config{Workers: 4})
	durCoord := jobs.New(engine.New(engine.Config{}), jobs.Config{Workers: 4, Store: st})
	defer memCoord.Close()
	defer durCoord.Close()
	runOnce := func(c *jobs.Coordinator, names []string, policies []*rule.Policy) (time.Duration, error) {
		start := time.Now()
		snap, err := c.Submit(jobs.Spec{
			Kind: jobs.KindCrossCompare, SchemaName: "five",
			Names: names, Policies: policies,
		})
		if err != nil {
			return 0, err
		}
		done, err := c.Done(snap.ID)
		if err != nil {
			return 0, err
		}
		<-done
		return time.Since(start), nil
	}
	ratios := make([]float64, 0, pairs)
	for i := 0; i < pairs; i++ {
		// Fresh policies per pair (the same set for both sides): the
		// engines live across pairs, and reused policies would let
		// compilation caching shrink every run after the first.
		names := make([]string, nPolicies)
		policies := make([]*rule.Policy, nPolicies)
		for k := range policies {
			names[k] = fmt.Sprintf("p%d", k+1)
			policies[k] = synth.Synthetic(synth.Config{Rules: jobRules, Seed: int64(i*nPolicies + k + 1)})
		}
		var mem, durable time.Duration
		var memErr, durErr error
		if i%2 == 0 {
			mem, memErr = runOnce(memCoord, names, policies)
			durable, durErr = runOnce(durCoord, names, policies)
		} else {
			durable, durErr = runOnce(durCoord, names, policies)
			mem, memErr = runOnce(memCoord, names, policies)
		}
		if memErr != nil || durErr != nil {
			fmt.Fprintf(os.Stderr, "durable overhead: %v %v\n", memErr, durErr)
			return 0
		}
		ratios = append(ratios, float64(durable)/float64(mem))
	}
	sort.Float64s(ratios)
	return (ratios[len(ratios)/2] - 1) * 100
}

// gitCommit best-effort resolves HEAD for provenance; benchmarks must
// still work from an exported tarball.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// nextBenchPath returns the first results/BENCH_<n>.json that does not
// exist yet, so snapshots are append-only.
func nextBenchPath(dir string) (string, error) {
	for n := 0; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
}

// benchJSON measures the pipeline phase by phase with testing.Benchmark
// and appends a BENCH_<n>.json snapshot to cfg.outDir.
func benchJSON(cfg config) error {
	// Reject sizes the generator would silently replace with its default:
	// the snapshot must record the workload that actually ran.
	if cfg.benchRules < 1 {
		return fmt.Errorf("-benchrules must be >= 1, got %d", cfg.benchRules)
	}
	// Validate the baseline up front; a typoed path should not cost a
	// full benchmark run.
	var base *benchReport
	if cfg.baseline != "" {
		var err error
		if base, err = readBenchReport(cfg.baseline); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	if cfg.gatePct > 0 && base == nil {
		return fmt.Errorf("-gate requires -baseline")
	}

	pa := synth.Synthetic(synth.Config{Rules: cfg.benchRules, Seed: 1})
	pb := synth.Synthetic(synth.Config{Rules: cfg.benchRules, Seed: 2})

	fmt.Printf("== fwbench -json: %d-rule synthetic pair, GOMAXPROCS=%d ==\n",
		cfg.benchRules, runtime.GOMAXPROCS(0))

	// Pre-build each phase's input outside its timed loop. The shaping and
	// comparison inputs are safe to reuse across iterations:
	// MakeSemiIsomorphic simplifies (deep-copies) its inputs, and
	// CompareSemiIsomorphic only reads the shaped diagrams.
	fa, err := fdd.Construct(pa)
	if err != nil {
		return err
	}
	fb, err := fdd.Construct(pb)
	if err != nil {
		return err
	}
	sa, sb, err := shape.MakeSemiIsomorphic(fa, fb)
	if err != nil {
		return err
	}

	// Inputs for the incremental edit-to-diff phases: a checkpointing
	// builder for pa, and three edited variants flipping three decisions
	// at the head, middle, and tail of the rule list. A tail edit resumes
	// from the deepest checkpoint and re-appends a handful of rules; a
	// head edit invalidates every checkpoint and rebuilds from rule zero.
	builder, err := fdd.NewBuilder(pa)
	if err != nil {
		return err
	}
	flip3 := func(start int) (*rule.Policy, error) {
		out := pa
		for i := start; i < start+3 && i < pa.Size()-1; i++ {
			r := out.Rules[i]
			if r.Decision == rule.Accept {
				r.Decision = rule.Discard
			} else {
				r.Decision = rule.Accept
			}
			var err error
			if out, err = out.ReplaceRule(i, r); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	editedHead, err := flip3(0)
	if err != nil {
		return err
	}
	editedMiddle, err := flip3(pa.Size() / 2)
	if err != nil {
		return err
	}
	editedTail, err := flip3(max(0, pa.Size()-4))
	if err != nil {
		return err
	}
	incremental := func(after *rule.Policy) func(b *testing.B) {
		return func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				nb, _, err := builder.Resume(ctx, after)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := compare.DiffFDDsDirect(builder.FDD(), nb.FDD()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	phases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"construct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fdd.Construct(pa); err != nil {
					b.Fatal(err)
				}
				if _, err := fdd.Construct(pb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"shape", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := shape.MakeSemiIsomorphic(fa, fb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"compare", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				compare.CompareSemiIsomorphic(sa, sb)
			}
		}},
		{"diff_end_to_end", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compare.Diff(pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"diff_end_to_end_traced", func(b *testing.B) {
			// Same work as diff_end_to_end but with a live trace carried
			// through the pipeline and retained the way fwserved retains
			// it; the ratio of the two phases is the tracing overhead.
			buf := trace.NewBuffer(64, 250*time.Millisecond, 8)
			for i := 0; i < b.N; i++ {
				ctx, tr := trace.New(context.Background(), "diff", "")
				if _, err := compare.DiffContext(ctx, pa, pb); err != nil {
					b.Fatal(err)
				}
				tr.Finish()
				buf.Observe(tr)
			}
		}},
		{"diff_warm_cache", func(b *testing.B) {
			// The serving scenario: the same pair diffed repeatedly against a
			// primed engine, so every iteration is a report-cache hit.
			eng := engine.New(engine.Config{})
			ctx := context.Background()
			if _, _, err := eng.DiffPolicies(ctx, pa, pb); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.DiffPolicies(ctx, pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The edit-to-diff path: resume the primed builder for a 3-rule
		// edit and direct-diff the before and after diagrams. Position in
		// the rule list is the whole story — see the phase inputs above.
		{"impact_incremental_head", incremental(editedHead)},
		{"impact_incremental_middle", incremental(editedMiddle)},
		{"impact_incremental_tail", incremental(editedTail)},
		// The async-job serving scenario: a 16-policy cross-comparison
		// (120 pairs) submitted to a fresh coordinator with 4 workers,
		// timed from Submit to the job's Done channel. Fresh engine per op
		// so every op pays 16 real compiles (the content-addressed cache
		// dedups the 240 per-pair compile requests down to those 16) plus
		// 120 shaped comparisons. The workload size is fixed and small —
		// not cfg.benchRules — because this phase measures coordinator
		// scheduling and cache coalescing, not raw pipeline cost.
		{"crosscompare_16x_sharded_4_workers", func(b *testing.B) {
			// Small rules keep one op well under a second, so the phase
			// averages several iterations instead of gating on a single
			// noisy 2s shot.
			const nPolicies, jobRules = 16, 20
			names := make([]string, nPolicies)
			policies := make([]*rule.Policy, nPolicies)
			for i := range policies {
				names[i] = fmt.Sprintf("p%d", i+1)
				policies[i] = synth.Synthetic(synth.Config{Rules: jobRules, Seed: int64(i + 1)})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := engine.New(engine.Config{})
				c := jobs.New(eng, jobs.Config{Workers: 4})
				snap, err := c.Submit(jobs.Spec{
					Kind: jobs.KindCrossCompare, SchemaName: "five",
					Names: names, Policies: policies,
				})
				if err != nil {
					b.Fatal(err)
				}
				done, err := c.Done(snap.ID)
				if err != nil {
					b.Fatal(err)
				}
				<-done
				final, err := c.Get(snap.ID)
				if err != nil {
					b.Fatal(err)
				}
				if final.State != jobs.StateCompleted || final.Progress.OK != final.Progress.Total {
					b.Fatalf("job did not complete cleanly: %+v", final.Progress)
				}
				if got := eng.Stats().Compilations; got != nPolicies {
					b.Fatalf("compilations = %d, want %d", got, nPolicies)
				}
				c.Close()
			}
		}},
		// The same 16-policy cross-comparison, but against a journaled
		// store at fsync=batch in a scratch directory — the durability tax
		// of the serving default. Each iteration opens a fresh journal (one
		// server life per job), and the open is timed with the job: it is
		// part of what the durable path costs. The ratio against the
		// in-memory phase above becomes durable_overhead_pct.
		{"jobs_durable_overhead", func(b *testing.B) {
			const nPolicies, jobRules = 16, 20
			names := make([]string, nPolicies)
			policies := make([]*rule.Policy, nPolicies)
			for i := range policies {
				names[i] = fmt.Sprintf("p%d", i+1)
				policies[i] = synth.Synthetic(synth.Config{Rules: jobRules, Seed: int64(i + 1)})
			}
			root, err := os.MkdirTemp("", "fwbench-journal-")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(root)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := jobs.OpenJournal(filepath.Join(root, strconv.Itoa(i)), jobs.JournalOptions{Fsync: jobs.FsyncBatch})
				if err != nil {
					b.Fatal(err)
				}
				eng := engine.New(engine.Config{})
				c := jobs.New(eng, jobs.Config{Workers: 4, Store: st})
				snap, err := c.Submit(jobs.Spec{
					Kind: jobs.KindCrossCompare, SchemaName: "five",
					Names: names, Policies: policies,
				})
				if err != nil {
					b.Fatal(err)
				}
				done, err := c.Done(snap.ID)
				if err != nil {
					b.Fatal(err)
				}
				<-done
				final, err := c.Get(snap.ID)
				if err != nil {
					b.Fatal(err)
				}
				if final.State != jobs.StateCompleted || final.Progress.OK != final.Progress.Total {
					b.Fatalf("job did not complete cleanly: %+v", final.Progress)
				}
				c.Close()
			}
			b.StopTimer()
		}},
	}

	report := benchReport{
		Schema:             benchSchema,
		GitCommit:          gitCommit(),
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		When:               time.Now().UTC().Format(time.RFC3339),
		Rules:              cfg.benchRules,
		Trials:             cfg.trials,
		CalibrationNsPerOp: calibrate.NsPerOp(),
	}
	fmt.Printf("machine calibration: %d ns/op (fixed CPU reference workload)\n", report.CalibrationNsPerOp)
	fmt.Println("phase            ns/op          B/op           allocs/op")
	for _, p := range phases {
		// Settle the heap so phase k+1 is not taxed for phase k's garbage
		// (material on small-core machines, where a single GC cycle is a
		// visible fraction of an op).
		runtime.GC()
		r := testing.Benchmark(p.fn)
		pr := phaseResult{
			Name:        p.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Phases = append(report.Phases, pr)
		fmt.Printf("%-16s %-14d %-14d %d\n", pr.Name, pr.NsPerOp, pr.BytesPerOp, pr.AllocsPerOp)
	}

	phaseNs := make(map[string]int64, len(report.Phases))
	for _, p := range report.Phases {
		phaseNs[p.Name] = p.NsPerOp
	}
	if cold, traced := phaseNs["diff_end_to_end"], phaseNs["diff_end_to_end_traced"]; cold > 0 && traced > 0 {
		report.TracedOverheadPct = (float64(traced)/float64(cold) - 1) * 100
		fmt.Printf("\ntracing overhead: %+.2f%% (traced vs untraced end-to-end diff)\n", report.TracedOverheadPct)
	}
	report.DurableOverheadPct = measureDurableOverhead()
	fmt.Printf("durable store overhead: %+.2f%% (journaled fsync=batch vs in-memory crosscompare, median of interleaved pairs)\n", report.DurableOverheadPct)
	report.SpanStats = spanStats(pa, pb)

	overload, err := runOverload(cfg.benchRules)
	if err != nil {
		return err
	}
	report.Overload = overload

	if base != nil {
		report.Baseline = cfg.baseline
		report.SpeedupVsBaseline = make(map[string]float64, len(base.Phases))
		baseNs := make(map[string]int64, len(base.Phases))
		for _, p := range base.Phases {
			baseNs[p.Name] = p.NsPerOp
		}
		fmt.Println("\nspeedup vs baseline", cfg.baseline)
		for _, p := range report.Phases {
			if bn, ok := baseNs[p.Name]; ok && p.NsPerOp > 0 {
				s := float64(bn) / float64(p.NsPerOp)
				report.SpeedupVsBaseline[p.Name] = s
				fmt.Printf("  %-16s %.2fx\n", p.Name, s)
			}
		}
		// The headline cache number: a warm repeat-diff against the
		// baseline's cold end-to-end diff. Baselines predating the engine
		// have no diff_warm_cache phase of their own, so this cross-phase
		// ratio is what makes the win visible.
		if coldNs, ok := baseNs["diff_end_to_end"]; ok {
			for _, p := range report.Phases {
				if p.Name == "diff_warm_cache" && p.NsPerOp > 0 {
					s := float64(coldNs) / float64(p.NsPerOp)
					report.SpeedupVsBaseline["diff_warm_cache_vs_cold_baseline"] = s
					fmt.Printf("  %-32s %.2fx\n", "diff_warm_cache_vs_cold_baseline", s)
				}
			}
		}
	}

	if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
		return err
	}
	path, err := nextBenchPath(cfg.outDir)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote", path)

	// The gate runs after the snapshot is written: a failing run still
	// leaves its numbers on disk for the investigation.
	if cfg.gatePct > 0 {
		remeasure := func(name string) (int64, bool) {
			for _, p := range phases {
				if p.name == name {
					runtime.GC()
					return testing.Benchmark(p.fn).NsPerOp(), true
				}
			}
			return 0, false
		}
		return gate(cfg, base, &report, remeasure)
	}
	return nil
}

// gate fails the run if any of cfg.gatePhases regressed more than
// cfg.gatePct percent against the baseline's ns/op. Phases the baseline
// never measured are skipped (a new phase cannot regress). A phase that
// appears over the limit is re-measured up to twice and judged on its
// minimum: on a small shared machine single testing.Benchmark runs
// swing well past 5% from scheduler noise alone, and the minimum is
// the standard noise-robust statistic for threshold gates (a real
// regression cannot benchmark faster than the code allows). The
// snapshot keeps the first measurement; retries only inform the
// verdict.
//
// When both snapshots carry a machine calibration, the baseline is
// rescaled by the calibration ratio first: this box's absolute timings
// drift by tens of percent between sessions on byte-identical
// workloads (host frequency and neighbors), and without normalization
// the gate measures the machine, not the code. Uncalibrated baselines
// are compared absolutely, as before.
func gate(cfg config, base *benchReport, report *benchReport, remeasure func(string) (int64, bool)) error {
	phases := report.Phases
	scale := calibrate.Ratio(report.CalibrationNsPerOp, base.CalibrationNsPerOp)
	if scale != 1 {
		fmt.Printf("gate: machine calibration ratio %.3f vs baseline (baseline limits rescaled)\n", scale)
	}
	baseNs := make(map[string]int64, len(base.Phases))
	for _, p := range base.Phases {
		baseNs[p.Name] = int64(float64(p.NsPerOp) * scale)
	}
	curNs := make(map[string]int64, len(phases))
	for _, p := range phases {
		curNs[p.Name] = p.NsPerOp
	}
	var failures []string
	for _, name := range strings.Split(cfg.gatePhases, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cur, ok := curNs[name]
		if !ok {
			return fmt.Errorf("gate: unknown phase %q", name)
		}
		bn, ok := baseNs[name]
		if !ok || bn <= 0 {
			continue
		}
		limit := float64(bn) * (1 + cfg.gatePct/100)
		for retry := 0; float64(cur) > limit && retry < 2 && remeasure != nil; retry++ {
			again, ok := remeasure(name)
			if !ok {
				break
			}
			fmt.Printf("gate: %s over limit (%d ns/op), re-measuring: %d ns/op\n", name, cur, again)
			if again < cur {
				cur = again
			}
		}
		pct := (float64(cur)/float64(bn) - 1) * 100
		if float64(cur) > limit {
			failures = append(failures, fmt.Sprintf("%s: %d ns/op vs baseline %d (%+.1f%%, limit +%.1f%%)",
				name, cur, bn, pct, cfg.gatePct))
		} else {
			fmt.Printf("gate ok: %-12s %+.1f%% vs baseline (limit +%.1f%%)\n", name, pct, cfg.gatePct)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("performance gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// spanStats runs the benchmark pair through one traced diff and folds
// the resulting span tree into name -> attr -> summed value, keeping
// only numeric attributes. Spans that run once per policy (construct)
// therefore report pair totals.
func spanStats(pa, pb *rule.Policy) map[string]map[string]int64 {
	ctx, tr := trace.New(context.Background(), "diff", "")
	if _, err := compare.DiffContext(ctx, pa, pb); err != nil {
		return nil
	}
	tr.Finish()
	stats := make(map[string]map[string]int64)
	tr.Snapshot().Root.Walk(func(s trace.SpanRecord) {
		for k, v := range s.Attrs {
			var n int64
			switch v := v.(type) {
			case int:
				n = int64(v)
			case int64:
				n = v
			case float64:
				n = int64(v)
			default:
				continue
			}
			if stats[s.Name] == nil {
				stats[s.Name] = make(map[string]int64)
			}
			stats[s.Name][k] += n
		}
	})
	return stats
}

// readBenchReport loads and validates a BENCH_*.json file.
func readBenchReport(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, benchSchema)
	}
	return &r, nil
}
