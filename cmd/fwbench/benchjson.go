package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"diversefw/internal/compare"
	"diversefw/internal/engine"
	"diversefw/internal/fdd"
	"diversefw/internal/shape"
	"diversefw/internal/synth"
)

// benchSchema identifies the BENCH_*.json format; bump it on any
// incompatible change so regression tooling can refuse to compare apples
// to oranges.
const benchSchema = "fwbench-json/v1"

// phaseResult is one measured pipeline phase, in testing.Benchmark units.
type phaseResult struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// benchReport is the machine-readable performance snapshot written to
// results/BENCH_<n>.json. Each file is immutable once written; the
// sequence of files is the repo's performance trajectory.
type benchReport struct {
	Schema     string        `json:"schema"`
	GitCommit  string        `json:"git_commit"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	When       string        `json:"when"`
	Rules      int           `json:"rules"`
	Trials     int           `json:"trials"`
	Phases     []phaseResult `json:"phases"`
	// Baseline is the path of the BENCH file these numbers were compared
	// against, and SpeedupVsBaseline maps phase name to
	// baseline_ns / current_ns (>1 means this snapshot is faster).
	Baseline          string             `json:"baseline,omitempty"`
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

// gitCommit best-effort resolves HEAD for provenance; benchmarks must
// still work from an exported tarball.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// nextBenchPath returns the first results/BENCH_<n>.json that does not
// exist yet, so snapshots are append-only.
func nextBenchPath(dir string) (string, error) {
	for n := 0; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
}

// benchJSON measures the pipeline phase by phase with testing.Benchmark
// and appends a BENCH_<n>.json snapshot to cfg.outDir.
func benchJSON(cfg config) error {
	// Reject sizes the generator would silently replace with its default:
	// the snapshot must record the workload that actually ran.
	if cfg.benchRules < 1 {
		return fmt.Errorf("-benchrules must be >= 1, got %d", cfg.benchRules)
	}
	// Validate the baseline up front; a typoed path should not cost a
	// full benchmark run.
	var base *benchReport
	if cfg.baseline != "" {
		var err error
		if base, err = readBenchReport(cfg.baseline); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}

	pa := synth.Synthetic(synth.Config{Rules: cfg.benchRules, Seed: 1})
	pb := synth.Synthetic(synth.Config{Rules: cfg.benchRules, Seed: 2})

	fmt.Printf("== fwbench -json: %d-rule synthetic pair, GOMAXPROCS=%d ==\n",
		cfg.benchRules, runtime.GOMAXPROCS(0))

	// Pre-build each phase's input outside its timed loop. The shaping and
	// comparison inputs are safe to reuse across iterations:
	// MakeSemiIsomorphic simplifies (deep-copies) its inputs, and
	// CompareSemiIsomorphic only reads the shaped diagrams.
	fa, err := fdd.Construct(pa)
	if err != nil {
		return err
	}
	fb, err := fdd.Construct(pb)
	if err != nil {
		return err
	}
	sa, sb, err := shape.MakeSemiIsomorphic(fa, fb)
	if err != nil {
		return err
	}

	phases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"construct", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fdd.Construct(pa); err != nil {
					b.Fatal(err)
				}
				if _, err := fdd.Construct(pb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"shape", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := shape.MakeSemiIsomorphic(fa, fb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"compare", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				compare.CompareSemiIsomorphic(sa, sb)
			}
		}},
		{"diff_end_to_end", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := compare.Diff(pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"diff_warm_cache", func(b *testing.B) {
			// The serving scenario: the same pair diffed repeatedly against a
			// primed engine, so every iteration is a report-cache hit.
			eng := engine.New(engine.Config{})
			ctx := context.Background()
			if _, _, err := eng.DiffPolicies(ctx, pa, pb); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := eng.DiffPolicies(ctx, pa, pb); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	report := benchReport{
		Schema:     benchSchema,
		GitCommit:  gitCommit(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		When:       time.Now().UTC().Format(time.RFC3339),
		Rules:      cfg.benchRules,
		Trials:     cfg.trials,
	}
	fmt.Println("phase            ns/op          B/op           allocs/op")
	for _, p := range phases {
		// Settle the heap so phase k+1 is not taxed for phase k's garbage
		// (material on small-core machines, where a single GC cycle is a
		// visible fraction of an op).
		runtime.GC()
		r := testing.Benchmark(p.fn)
		pr := phaseResult{
			Name:        p.name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		report.Phases = append(report.Phases, pr)
		fmt.Printf("%-16s %-14d %-14d %d\n", pr.Name, pr.NsPerOp, pr.BytesPerOp, pr.AllocsPerOp)
	}

	if base != nil {
		report.Baseline = cfg.baseline
		report.SpeedupVsBaseline = make(map[string]float64, len(base.Phases))
		baseNs := make(map[string]int64, len(base.Phases))
		for _, p := range base.Phases {
			baseNs[p.Name] = p.NsPerOp
		}
		fmt.Println("\nspeedup vs baseline", cfg.baseline)
		for _, p := range report.Phases {
			if bn, ok := baseNs[p.Name]; ok && p.NsPerOp > 0 {
				s := float64(bn) / float64(p.NsPerOp)
				report.SpeedupVsBaseline[p.Name] = s
				fmt.Printf("  %-16s %.2fx\n", p.Name, s)
			}
		}
		// The headline cache number: a warm repeat-diff against the
		// baseline's cold end-to-end diff. Baselines predating the engine
		// have no diff_warm_cache phase of their own, so this cross-phase
		// ratio is what makes the win visible.
		if coldNs, ok := baseNs["diff_end_to_end"]; ok {
			for _, p := range report.Phases {
				if p.Name == "diff_warm_cache" && p.NsPerOp > 0 {
					s := float64(coldNs) / float64(p.NsPerOp)
					report.SpeedupVsBaseline["diff_warm_cache_vs_cold_baseline"] = s
					fmt.Printf("  %-32s %.2fx\n", "diff_warm_cache_vs_cold_baseline", s)
				}
			}
		}
	}

	if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
		return err
	}
	path, err := nextBenchPath(cfg.outDir)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("\nwrote", path)
	return nil
}

// readBenchReport loads and validates a BENCH_*.json file.
func readBenchReport(path string) (*benchReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, benchSchema)
	}
	return &r, nil
}
