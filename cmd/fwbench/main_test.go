package main

import (
	"os"
	"path/filepath"
	"testing"
)

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwbench"}, args...)
	return run()
}

func TestEffectivenessExperiment(t *testing.T) {
	dir := t.TempDir()
	if code := withArgs(t, "-exp", "effectiveness", "-csv", dir); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "effectiveness.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestBDDExperiment(t *testing.T) {
	if code := withArgs(t, "-exp", "bdd"); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestFig12SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 sweep is seconds-long")
	}
	dir := t.TempDir()
	if code := withArgs(t, "-exp", "fig12", "-trials", "1", "-csv", dir); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig12.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestFig13SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 sweep is seconds-long")
	}
	if code := withArgs(t, "-exp", "fig13", "-trials", "1", "-maxn", "500"); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestBackToBackExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("hundred-thousand-packet sweep")
	}
	dir := t.TempDir()
	if code := withArgs(t, "-exp", "backtoback", "-csv", dir); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "backtoback.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := withArgs(t, "-exp", "warp"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}
