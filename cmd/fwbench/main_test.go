package main

import (
	"os"
	"path/filepath"
	"testing"
)

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwbench"}, args...)
	return run()
}

func TestEffectivenessExperiment(t *testing.T) {
	dir := t.TempDir()
	if code := withArgs(t, "-exp", "effectiveness", "-csv", dir); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "effectiveness.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestBDDExperiment(t *testing.T) {
	if code := withArgs(t, "-exp", "bdd"); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestFig12SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 sweep is seconds-long")
	}
	dir := t.TempDir()
	if code := withArgs(t, "-exp", "fig12", "-trials", "1", "-csv", dir); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig12.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestFig13SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("fig13 sweep is seconds-long")
	}
	if code := withArgs(t, "-exp", "fig13", "-trials", "1", "-maxn", "500"); code != 0 {
		t.Fatalf("exit = %d", code)
	}
}

func TestBackToBackExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("hundred-thousand-packet sweep")
	}
	dir := t.TempDir()
	if code := withArgs(t, "-exp", "backtoback", "-csv", dir); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "backtoback.csv")); err != nil {
		t.Fatalf("csv not written: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if code := withArgs(t, "-exp", "warp"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestJSONBenchSnapshot(t *testing.T) {
	dir := t.TempDir()
	if code := withArgs(t, "-json", "-out", dir, "-benchrules", "40"); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	r0, err := readBenchReport(filepath.Join(dir, "BENCH_0.json"))
	if err != nil {
		t.Fatal(err)
	}
	if r0.Rules != 40 || r0.GOMAXPROCS < 1 || r0.GoVersion == "" {
		t.Fatalf("bad provenance: %+v", r0)
	}
	want := map[string]bool{
		"construct": true, "shape": true, "compare": true,
		"diff_end_to_end": true, "diff_end_to_end_traced": true,
		"diff_warm_cache": true, "impact_incremental_head": true,
		"impact_incremental_middle": true, "impact_incremental_tail": true,
		"crosscompare_16x_sharded_4_workers": true,
		"jobs_durable_overhead":              true,
	}
	for _, p := range r0.Phases {
		if !want[p.Name] {
			t.Fatalf("unexpected phase %q", p.Name)
		}
		delete(want, p.Name)
		if p.NsPerOp <= 0 || p.AllocsPerOp <= 0 {
			t.Fatalf("phase %s has empty measurements: %+v", p.Name, p)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing phases: %v", want)
	}
	if r0.TracedOverheadPct == 0 {
		t.Fatal("traced_overhead_pct not recorded")
	}
	if r0.DurableOverheadPct == 0 {
		t.Fatal("durable_overhead_pct not recorded")
	}
	for _, span := range []string{"construct", "shape", "compare"} {
		if len(r0.SpanStats[span]) == 0 {
			t.Fatalf("span_stats missing %q: %v", span, r0.SpanStats)
		}
	}
	if r0.SpanStats["construct"]["rules"] != 80 {
		t.Fatalf("construct span stats should sum the pair: %v", r0.SpanStats["construct"])
	}

	// A second run appends BENCH_1.json, embeds baseline speedups, and
	// passes a generous regression gate against the first run.
	base := filepath.Join(dir, "BENCH_0.json")
	if code := withArgs(t, "-json", "-out", dir, "-benchrules", "40",
		"-baseline", base, "-gate", "10000"); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	r1, err := readBenchReport(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Baseline != base {
		t.Fatalf("baseline not recorded: %q", r1.Baseline)
	}
	// Eleven per-phase ratios plus the warm-vs-cold-baseline headline.
	if len(r1.SpeedupVsBaseline) != 12 {
		t.Fatalf("want 12 speedup entries, got %v", r1.SpeedupVsBaseline)
	}
	for name, s := range r1.SpeedupVsBaseline {
		if s <= 0 {
			t.Fatalf("phase %s: nonpositive speedup %v", name, s)
		}
	}
	warm, ok := r1.SpeedupVsBaseline["diff_warm_cache_vs_cold_baseline"]
	if !ok || warm < 1 {
		t.Fatalf("warm repeat-diff should beat the cold baseline: %v (ok=%v)", warm, ok)
	}
}

// TestGateRequiresBaseline pins that -gate without -baseline is a usage
// error caught before any benchmarking runs.
func TestGateRequiresBaseline(t *testing.T) {
	if code := withArgs(t, "-json", "-gate", "5"); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

func TestJSONBenchBadBaseline(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := withArgs(t, "-json", "-out", dir, "-benchrules", "20", "-baseline", bad); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

// TestGateCatchesRegression runs the gate against a fabricated baseline
// claiming the phases once took 1 ns/op: any real measurement is a
// regression, so the run must fail — after still writing its snapshot.
func TestGateCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	fast := filepath.Join(dir, "fast.json")
	doc := `{"schema":"fwbench-json/v1","phases":[` +
		`{"name":"construct","ns_per_op":1},{"name":"compare","ns_per_op":1}]}`
	if err := os.WriteFile(fast, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := withArgs(t, "-json", "-out", dir, "-benchrules", "20",
		"-baseline", fast, "-gate", "5"); code != 1 {
		t.Fatalf("exit = %d, want 1 (gate must fail)", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_0.json")); err != nil {
		t.Fatalf("failing gate must still leave the snapshot: %v", err)
	}
}
