// Command fwbench regenerates the paper's evaluation (Section 8):
//
//	-exp fig12          runtime vs. perturbation fraction x on the two
//	                    real-life-sized firewalls (661 and 42 rules)
//	-exp fig13          runtime of the three algorithms vs. rule count on
//	                    independently generated synthetic firewalls
//	-exp effectiveness  the Section 8.1 redesign experiment: an 87-rule
//	                    firewall with seeded ordering/missing-rule errors
//	                    compared against a correct redesign
//	-exp bdd            the Section 7.5 baseline: BDD-based diffing vs.
//	                    the FDD pipeline (output size explosion)
//	-exp all            everything
//
// Each experiment prints the series the paper plots; -csv DIR additionally
// writes machine-readable CSV files. Absolute times will differ from the
// paper's 2004 Java/SunBlade numbers; the shapes (near-linear growth,
// construction dominating, seconds at 3,000 rules) are the reproduction
// target — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"diversefw/internal/backtoback"
	"diversefw/internal/bdd"
	"diversefw/internal/compare"
	"diversefw/internal/impact"
	"diversefw/internal/paper"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
	"diversefw/internal/textio"
)

func main() {
	os.Exit(run())
}

type config struct {
	exp        string
	trials     int
	csvDir     string
	maxN       int
	jsonMode   bool
	outDir     string
	baseline   string
	benchRules int
	gatePct    float64
	gatePhases string
}

func run() int {
	fs := flag.NewFlagSet("fwbench", flag.ContinueOnError)
	cfg := config{}
	fs.StringVar(&cfg.exp, "exp", "all", "experiment: fig12, fig13, effectiveness, bdd, backtoback, all")
	fs.IntVar(&cfg.trials, "trials", 5, "trials per data point (the paper used 100 for fig12)")
	fs.StringVar(&cfg.csvDir, "csv", "", "directory to write CSV series into (optional)")
	fs.IntVar(&cfg.maxN, "maxn", 3000, "largest synthetic firewall for fig13")
	fs.BoolVar(&cfg.jsonMode, "json", false, "benchmark the pipeline phases and append a results/BENCH_<n>.json snapshot")
	fs.StringVar(&cfg.outDir, "out", "results", "directory for -json snapshots")
	fs.StringVar(&cfg.baseline, "baseline", "", "prior BENCH_*.json to compute speedups against (-json only)")
	fs.IntVar(&cfg.benchRules, "benchrules", 1000, "synthetic pair size for -json")
	fs.Float64Var(&cfg.gatePct, "gate", 0, "fail (exit 1) if any -gatephases phase regresses more than this percent vs -baseline (0 disables)")
	fs.StringVar(&cfg.gatePhases, "gatephases", "construct,compare", "comma-separated phases the -gate check applies to")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwbench [-exp name] [-trials k] [-csv dir] | fwbench -json [-baseline file] [-gate pct]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if cfg.jsonMode {
		if err := benchJSON(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fwbench: -json: %v\n", err)
			return 1
		}
		return 0
	}

	runs := map[string]func(config) error{
		"fig12":         fig12,
		"fig13":         fig13,
		"effectiveness": effectiveness,
		"bdd":           bddBaseline,
		"backtoback":    backToBack,
	}
	order := []string{"effectiveness", "fig12", "fig13", "bdd", "backtoback"}
	if cfg.exp != "all" {
		if _, ok := runs[cfg.exp]; !ok {
			fmt.Fprintf(os.Stderr, "fwbench: unknown experiment %q\n", cfg.exp)
			return 2
		}
		order = []string{cfg.exp}
	}
	for _, name := range order {
		if err := runs[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fwbench: %s: %v\n", name, err)
			return 1
		}
	}
	return 0
}

// csvFile opens a CSV sink in the -csv directory, or a discard sink.
func csvFile(cfg config, name string, header ...string) (*textio.CSVWriter, func(), error) {
	if cfg.csvDir == "" {
		return textio.NewCSV(io.Discard, header...), func() {}, nil
	}
	if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(cfg.csvDir, name))
	if err != nil {
		return nil, nil, err
	}
	return textio.NewCSV(f, header...), func() { f.Close() }, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// fig12 reproduces "Experimental results on real-life firewalls": for each
// base size (661 and 42 rules) and each x in 5..50, run `trials`
// perturb-and-compare rounds and report mean per-phase times.
func fig12(cfg config) error {
	fmt.Println("== Fig. 12: runtime vs. perturbation fraction x (real-life-sized firewalls) ==")
	csv, done, err := csvFile(cfg, "fig12.csv", "base_rules", "x_pct", "construct_ms", "shape_ms", "compare_ms", "total_ms")
	if err != nil {
		return err
	}
	defer done()

	for _, base := range []int{661, 42} {
		orig := synth.RealLife(base, 1)
		fmt.Printf("\nbase firewall: %d rules; %d trials per point\n", base, cfg.trials)
		fmt.Println("x%   construct(ms)  shape(ms)  compare(ms)  total(ms)")
		for x := 5; x <= 50; x += 5 {
			var sum compare.Timing
			for trial := 0; trial < cfg.trials; trial++ {
				perturbed, _ := synth.Perturb(orig, float64(x), int64(1000*x+trial))
				report, err := compare.Diff(orig, perturbed)
				if err != nil {
					return err
				}
				sum.Construct += report.Timing.Construct
				sum.Shape += report.Timing.Shape
				sum.Compare += report.Timing.Compare
			}
			k := time.Duration(cfg.trials)
			mean := compare.Timing{Construct: sum.Construct / k, Shape: sum.Shape / k, Compare: sum.Compare / k}
			fmt.Printf("%-4d %-14.2f %-10.2f %-12.2f %.2f\n",
				x, ms(mean.Construct), ms(mean.Shape), ms(mean.Compare), ms(mean.Total()))
			if err := csv.Row(base, x, ms(mean.Construct), ms(mean.Shape), ms(mean.Compare), ms(mean.Total())); err != nil {
				return err
			}
		}
	}
	return nil
}

// fig13 reproduces "Experimental results on synthetic firewalls of large
// sizes": independently generated pairs, runtime vs. rule count.
func fig13(cfg config) error {
	fmt.Println("\n== Fig. 13: runtime vs. rule count (independent synthetic firewalls) ==")
	csv, done, err := csvFile(cfg, "fig13.csv", "rules", "construct_ms", "shape_ms", "compare_ms", "total_ms", "discrepancies")
	if err != nil {
		return err
	}
	defer done()

	fmt.Printf("%d trials per point\n", cfg.trials)
	fmt.Println("rules  construct(ms)  shape(ms)  compare(ms)  total(ms)  rows")
	for n := 250; n <= cfg.maxN; n += 250 {
		var sum compare.Timing
		rows := 0
		for trial := 0; trial < cfg.trials; trial++ {
			pa := synth.Synthetic(synth.Config{Rules: n, Seed: int64(2*trial + 1)})
			pb := synth.Synthetic(synth.Config{Rules: n, Seed: int64(2*trial + 2)})
			report, err := compare.Diff(pa, pb)
			if err != nil {
				return err
			}
			sum.Construct += report.Timing.Construct
			sum.Shape += report.Timing.Shape
			sum.Compare += report.Timing.Compare
			rows += len(report.Discrepancies)
		}
		k := time.Duration(cfg.trials)
		mean := compare.Timing{Construct: sum.Construct / k, Shape: sum.Shape / k, Compare: sum.Compare / k}
		fmt.Printf("%-6d %-14.2f %-10.2f %-12.2f %-10.2f %d\n",
			n, ms(mean.Construct), ms(mean.Shape), ms(mean.Compare), ms(mean.Total()), rows/cfg.trials)
		if err := csv.Row(n, ms(mean.Construct), ms(mean.Shape), ms(mean.Compare), ms(mean.Total()), rows/cfg.trials); err != nil {
			return err
		}
	}
	return nil
}

// effectiveness reproduces the Section 8.1 redesign experiment in
// simulated form: a reference specification, an aged "original firewall"
// with seeded ordering and missing-rule errors, and a "redesign" with two
// specification misreadings. The comparator must find all functional
// discrepancies, attributable to their causes.
func effectiveness(cfg config) error {
	fmt.Println("== Section 8.1: effectiveness (simulated redesign experiment) ==")
	csv, done, err := csvFile(cfg, "effectiveness.csv", "quantity", "value")
	if err != nil {
		return err
	}
	defer done()

	// The reference captures the intended semantics (the rule comments of
	// the paper's university firewall). 87 rules as in the paper.
	reference := synth.RealLife(87, 3)

	// The original firewall: the admin added rules at the front over the
	// years (ordering errors) and lost some rules (missing).
	original, log := synth.InjectErrors(reference, synth.ErrorConfig{
		OrderingErrors: 12,
		MissingRules:   4,
		Seed:           8,
	})

	// The redesign: correct except for two specification misreadings
	// (decisions flipped on two rules).
	redesign := reference.Clone()
	for _, i := range []int{10, 30} {
		r := redesign.Rules[i]
		d := rule.Accept
		if r.Decision == rule.Accept {
			d = rule.Discard
		}
		redesign, err = redesign.ReplaceRule(i, rule.Rule{Pred: r.Pred, Decision: d})
		if err != nil {
			return err
		}
	}

	report, err := compare.Diff(original, redesign)
	if err != nil {
		return err
	}
	imOrig, err := impact.Analyze(reference, original)
	if err != nil {
		return err
	}
	imRedesign, err := impact.Analyze(reference, redesign)
	if err != nil {
		return err
	}

	fmt.Printf("seeded into the original: %d ordering errors, %d missing rules\n",
		len(log.MovedToFront), len(log.Deleted))
	fmt.Printf("seeded into the redesign: 2 specification misreadings\n\n")
	fmt.Printf("discrepancies found (original vs redesign): %d\n", len(report.Discrepancies))
	fmt.Printf("  regions where the original deviates from the spec: %d\n", len(imOrig.Report.Discrepancies))
	fmt.Printf("  regions where the redesign deviates from the spec: %d\n", len(imRedesign.Report.Discrepancies))
	fmt.Printf("comparison time: %v\n", report.Timing.Total())

	rows := [][]interface{}{
		{"ordering_errors_seeded", len(log.MovedToFront)},
		{"missing_rules_seeded", len(log.Deleted)},
		{"misreadings_seeded", 2},
		{"discrepancies_found", len(report.Discrepancies)},
		{"original_deviation_regions", len(imOrig.Report.Discrepancies)},
		{"redesign_deviation_regions", len(imRedesign.Report.Discrepancies)},
	}
	for _, r := range rows {
		if err := csv.Row(r...); err != nil {
			return err
		}
	}
	if len(report.Discrepancies) == 0 {
		return fmt.Errorf("seeded errors produced no discrepancies")
	}

	// Repeat across seeds: the detection claim must hold for every error
	// mix, not one lucky draw.
	fmt.Printf("\nrepeatability over %d seeds (87 rules, 12 ordering + 4 missing each):\n", cfg.trials)
	fmt.Println("seed  discrepancies  errors_seeded  detected_all")
	for trial := 0; trial < cfg.trials; trial++ {
		seed := int64(100 + trial)
		ref := synth.RealLife(87, seed)
		orig, lg := synth.InjectErrors(ref, synth.ErrorConfig{
			OrderingErrors: 12, MissingRules: 4, Seed: seed + 1,
		})
		rep, err := compare.Diff(orig, ref)
		if err != nil {
			return err
		}
		// Detection is complete by construction iff any seeded error that
		// changed behaviour yields at least one region; an error mix can
		// legitimately cancel out, so "detected_all" means: the diff is
		// empty only when original and reference are genuinely equivalent
		// (cross-checked with the independent N-way pipeline).
		detectedAll := true
		if rep.Equivalent() {
			nrep, err := compare.DiffN([]*rule.Policy{orig, ref})
			if err != nil {
				return err
			}
			detectedAll = nrep.Equivalent()
		}
		fmt.Printf("%-5d %-14d %-14d %v\n", seed, len(rep.Discrepancies), len(lg.MovedToFront)+len(lg.Deleted), detectedAll)
		if !detectedAll {
			return fmt.Errorf("seed %d: pipelines disagree on equivalence", seed)
		}
	}
	return nil
}

// backToBack reproduces the Section 9 contrast with back-to-back testing
// [25]: sampling-based cross testing misses discrepancy regions the exact
// comparison finds, at any realistic test budget.
func backToBack(cfg config) error {
	fmt.Println("\n== Section 9: back-to-back testing vs. exact comparison ==")
	csv, done, err := csvFile(cfg, "backtoback.csv",
		"workload", "strategy", "tests", "regions_total", "regions_found")
	if err != nil {
		return err
	}
	defer done()

	type workload struct {
		name   string
		pa, pb *rule.Policy
	}
	workloads := []workload{
		{"paper-example", paper.TeamA(), paper.TeamB()},
	}
	base := synth.RealLife(200, 5)
	perturbed, _ := synth.Perturb(base, 15, 9)
	workloads = append(workloads, workload{"perturbed-200", base, perturbed})

	fmt.Println("workload       strategy  tests    regions  found")
	for _, w := range workloads {
		report, err := compare.Diff(w.pa, w.pb)
		if err != nil {
			return err
		}
		for _, strat := range []backtoback.Strategy{backtoback.Uniform, backtoback.Biased} {
			for _, n := range []int{1000, 10000, 100000} {
				res, err := backtoback.Run(w.pa, w.pb, n, 11, strat)
				if err != nil {
					return err
				}
				found, total := backtoback.Coverage(report, res)
				fmt.Printf("%-14s %-9s %-8d %-8d %d\n", w.name, strat, n, total, found)
				if err := csv.Row(w.name, strat.String(), n, total, found); err != nil {
					return err
				}
			}
		}
		fmt.Printf("%-14s %-9s %-8s %-8d %d   (construction+shaping+comparison: %v)\n",
			w.name, "exact", "-", len(report.Discrepancies), len(report.Discrepancies),
			report.Timing.Total().Round(time.Millisecond))
	}
	fmt.Println("\n(back-to-back testing reports point witnesses and misses sliver")
	fmt.Println("regions; the FDD comparison reports every region, as regions.)")
	return nil
}

// bddBaseline reproduces the Section 7.5 comparison: the FDD pipeline's
// human-readable rows vs. the BDD flattening's bit-level cube count.
func bddBaseline(cfg config) error {
	fmt.Println("\n== Section 7.5: BDD baseline (output-size explosion) ==")
	csv, done, err := csvFile(cfg, "bdd.csv", "workload", "fdd_rows", "bdd_cubes", "bdd_nodes", "fdd_ms", "bdd_ms")
	if err != nil {
		return err
	}
	defer done()

	type workload struct {
		name   string
		pa, pb *rule.Policy
	}
	workloads := []workload{
		{"paper-example", paper.TeamA(), paper.TeamB()},
	}
	for _, n := range []int{20, 50, 100} {
		workloads = append(workloads, workload{
			fmt.Sprintf("synthetic-%d", n),
			synth.Synthetic(synth.Config{Rules: n, Seed: 1}),
			synth.Synthetic(synth.Config{Rules: n, Seed: 2}),
		})
	}

	fmt.Println("workload       FDD rows  BDD cubes     BDD nodes  FDD(ms)  BDD(ms)")
	for _, w := range workloads {
		t0 := time.Now()
		report, err := compare.Diff(w.pa, w.pb)
		if err != nil {
			return err
		}
		fddTime := time.Since(t0)

		t0 = time.Now()
		_, res, err := bdd.DiffPolicies(w.pa, w.pb)
		if err != nil {
			return err
		}
		bddTime := time.Since(t0)

		fmt.Printf("%-14s %-9d %-13.3g %-10d %-8.2f %.2f\n",
			w.name, len(report.Discrepancies), res.Cubes, res.Nodes, ms(fddTime), ms(bddTime))
		if err := csv.Row(w.name, len(report.Discrepancies), res.Cubes, res.Nodes, ms(fddTime), ms(bddTime)); err != nil {
			return err
		}
	}
	fmt.Println("\n(FDD rows are field-level, human-readable rules; BDD cubes are")
	fmt.Println("single-bit-test rules — the paper's reason for rejecting BDDs.)")
	return nil
}
