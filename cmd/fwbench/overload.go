package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"diversefw/internal/admission"
	"diversefw/internal/api"
	"diversefw/internal/engine"
	"diversefw/internal/guard"
	"diversefw/internal/metrics"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
)

// overloadResult is the -json snapshot of the overload phase: offered
// load deliberately above capacity, measuring how much the admission
// controller sheds and what latency the admitted requests see. The
// resilience claim in numbers: under 8x oversubscription the server
// answers every request — most with a fast 503, the admitted ones at a
// bounded p99 — instead of queueing without limit.
type overloadResult struct {
	Workers       int     `json:"workers"`
	Capacity      int     `json:"capacity"`
	Queue         int     `json:"queue"`
	Offered       int     `json:"offered_requests"`
	Admitted      int     `json:"admitted"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	ShedRatePct   float64 `json:"shed_rate_pct"`
	P50AdmittedMs float64 `json:"p50_admitted_ms"`
	P99AdmittedMs float64 `json:"p99_admitted_ms"`
}

// runOverload drives `workers` concurrent clients, each issuing fresh
// (uncached) diff requests, against a server admitting only `capacity`
// at a time. Every request either completes the analysis (200), sheds
// with 503/429, or is an error; the three must sum to the offered load.
func runOverload(benchRules int) (*overloadResult, error) {
	const (
		workers   = 16
		capacity  = 2
		queue     = 2
		perWorker = 20
	)
	eng := engine.New(engine.Config{
		Limits: guard.Limits{MaxFDDNodes: 5_000_000, MaxEdgeSplits: 5_000_000},
	})
	srv := api.NewServer(
		api.WithEngine(eng),
		api.WithMetrics(metrics.NewRegistry()),
		api.WithAdmission(admission.Config{
			MaxInFlight:   capacity,
			MaxQueue:      queue,
			QueueDeadline: 250 * time.Millisecond,
		}),
	)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Each request diffs a distinct perturbation of the base pair so
	// every admitted request pays the real compile cost; a warm-cache
	// storm would measure the shedder against no-op work.
	rules := benchRules
	if rules > 300 {
		rules = 300 // keep the overload phase seconds, not minutes
	}
	base := synth.Synthetic(synth.Config{Rules: rules, Seed: 1})
	baseText := rule.FormatPolicy(base)
	makeBody := func(seq int) string {
		perturbed, _ := synth.Perturb(base, 10, int64(seq))
		a, _ := json.Marshal(baseText)
		b, _ := json.Marshal(rule.FormatPolicy(perturbed))
		return `{"schema":"five","a":` + string(a) + `,"b":` + string(b) + `}`
	}

	type sample struct {
		status int
		dur    time.Duration
		err    bool
	}
	samples := make([]sample, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perWorker; i++ {
				seq := w*perWorker + i
				body := makeBody(seq)
				t0 := time.Now()
				resp, err := client.Post(ts.URL+"/v1/diff", "application/json", strings.NewReader(body))
				if err != nil {
					samples[seq] = sample{err: true}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				samples[seq] = sample{status: resp.StatusCode, dur: time.Since(t0)}
			}
		}(w)
	}
	wg.Wait()

	res := &overloadResult{Workers: workers, Capacity: capacity, Queue: queue, Offered: len(samples)}
	var admittedMs []float64
	for _, s := range samples {
		switch {
		case s.err:
			res.Errors++
		case s.status == http.StatusOK:
			res.Admitted++
			admittedMs = append(admittedMs, float64(s.dur.Microseconds())/1000)
		case s.status == http.StatusServiceUnavailable || s.status == http.StatusTooManyRequests:
			res.Shed++
		default:
			res.Errors++
		}
	}
	if res.Admitted == 0 {
		return nil, fmt.Errorf("overload: no requests were admitted (shed %d, errors %d)", res.Shed, res.Errors)
	}
	if res.Errors > 0 {
		return nil, fmt.Errorf("overload: %d requests failed outside the shed protocol", res.Errors)
	}
	res.ShedRatePct = 100 * float64(res.Shed) / float64(res.Offered)
	sort.Float64s(admittedMs)
	res.P50AdmittedMs = percentile(admittedMs, 50)
	res.P99AdmittedMs = percentile(admittedMs, 99)

	fmt.Printf("\n== overload: %d workers vs capacity %d+%d queue (GOMAXPROCS=%d) ==\n",
		workers, capacity, queue, runtime.GOMAXPROCS(0))
	fmt.Printf("offered %d  admitted %d  shed %d (%.1f%%)  p50 %.2fms  p99 %.2fms\n",
		res.Offered, res.Admitted, res.Shed, res.ShedRatePct, res.P50AdmittedMs, res.P99AdmittedMs)
	return res, nil
}

// percentile returns the p-th percentile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
