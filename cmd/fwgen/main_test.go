package main

import (
	"os"
	"path/filepath"
	"testing"
)

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwgen"}, args...)
	return run()
}

// captureStdout redirects stdout into a file and returns its contents
// after fn runs.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	defer func() { os.Stdout = old }()
	path := filepath.Join(t.TempDir(), "stdout")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = f
	fn()
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestGenerateWritesPolicy(t *testing.T) {
	out := captureStdout(t, func() {
		if code := withArgs(t, "-n", "20", "-seed", "3"); code != 0 {
			t.Fatalf("exit = %d", code)
		}
	})
	if out == "" {
		t.Fatal("no policy written")
	}
	// Deterministic for a fixed seed.
	out2 := captureStdout(t, func() {
		if code := withArgs(t, "-n", "20", "-seed", "3"); code != 0 {
			t.Fatalf("exit = %d", code)
		}
	})
	if out != out2 {
		t.Fatal("same seed should reproduce the policy")
	}
}

func TestPerturbAndInject(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.fw")
	text := captureStdout(t, func() {
		if code := withArgs(t, "-n", "30", "-seed", "5"); code != 0 {
			t.Fatalf("generate exit = %d", code)
		}
	})
	if err := os.WriteFile(base, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	perturbed := captureStdout(t, func() {
		if code := withArgs(t, "-perturb", base, "-x", "20", "-seed", "7"); code != 0 {
			t.Fatalf("perturb exit = %d", code)
		}
	})
	if perturbed == "" || perturbed == text {
		t.Fatal("perturbation should change the policy")
	}

	injected := captureStdout(t, func() {
		if code := withArgs(t, "-inject", base, "-order", "3", "-missing", "1", "-seed", "7"); code != 0 {
			t.Fatalf("inject exit = %d", code)
		}
	})
	if injected == "" || injected == text {
		t.Fatal("error injection should change the policy")
	}
}

func TestGenErrors(t *testing.T) {
	if code := withArgs(t, "-perturb", "/nonexistent/base.fw"); code != 2 {
		t.Fatalf("missing perturb input: exit = %d, want 2", code)
	}
	if code := withArgs(t, "-inject", "/nonexistent/base.fw"); code != 2 {
		t.Fatalf("missing inject input: exit = %d, want 2", code)
	}
}
