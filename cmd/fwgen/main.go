// Command fwgen generates synthetic firewall policies with the
// characteristics the paper's evaluation uses (Section 8.2): realistic
// five-tuple rule distributions, the perturbation protocol that derives a
// second version from a policy, and the error-injection workload of the
// effectiveness experiment.
//
// Usage:
//
//	fwgen -n 500 -seed 1 > a.fw                     # synthetic policy
//	fwgen -perturb a.fw -x 20 -seed 7 > a2.fw       # Section 8.2.1 variant
//	fwgen -inject a.fw -order 10 -missing 3 > bad.fw # Section 8.1 workload
package main

import (
	"flag"
	"fmt"
	"os"

	"diversefw/internal/cli"
	"diversefw/internal/rule"
	"diversefw/internal/synth"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwgen", flag.ContinueOnError)
	n := fs.Int("n", 100, "number of rules to generate")
	seed := fs.Int64("seed", 1, "random seed")
	poolSeed := fs.Int64("pool-seed", 0, "address-universe seed (0 = shared default; versions of the same network must match)")
	perturb := fs.String("perturb", "", "perturb the given policy file instead of generating")
	x := fs.Float64("x", 10, "perturbation: percentage of rules to select")
	inject := fs.String("inject", "", "inject errors into the given policy file instead of generating")
	order := fs.Int("order", 10, "error injection: rules wrongly moved to the front")
	missing := fs.Int("missing", 2, "error injection: rules deleted")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwgen [-n rules] [-seed s] [> out.fw]")
		fmt.Fprintln(os.Stderr, "       fwgen -perturb in.fw -x pct [-seed s] [> out.fw]")
		fmt.Fprintln(os.Stderr, "       fwgen -inject in.fw -order k -missing m [-seed s] [> out.fw]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	schema, _ := cli.Schema("five")
	switch {
	case *perturb != "":
		p, err := cli.LoadPolicy(schema, *perturb)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwgen:", err)
			return 2
		}
		q, stats := synth.Perturb(p, *x, *seed)
		fmt.Fprintf(os.Stderr, "fwgen: selected %d rules (y=%d%%): flipped %d, deleted %d\n",
			stats.Selected, stats.YPercent, stats.Flipped, stats.Deleted)
		if err := rule.WritePolicy(os.Stdout, q); err != nil {
			fmt.Fprintln(os.Stderr, "fwgen:", err)
			return 2
		}
	case *inject != "":
		p, err := cli.LoadPolicy(schema, *inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwgen:", err)
			return 2
		}
		q, log := synth.InjectErrors(p, synth.ErrorConfig{
			OrderingErrors: *order,
			MissingRules:   *missing,
			Seed:           *seed,
		})
		fmt.Fprintf(os.Stderr, "fwgen: moved rules %v to the front; deleted rules %v\n",
			log.MovedToFront, log.Deleted)
		if err := rule.WritePolicy(os.Stdout, q); err != nil {
			fmt.Fprintln(os.Stderr, "fwgen:", err)
			return 2
		}
	default:
		p := synth.Synthetic(synth.Config{Rules: *n, Seed: *seed, PoolSeed: *poolSeed})
		if err := rule.WritePolicy(os.Stdout, p); err != nil {
			fmt.Fprintln(os.Stderr, "fwgen:", err)
			return 2
		}
	}
	return 0
}
