package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwverify"}, args...)
	return run()
}

const theSpec = `
require I in 0 && S in 224.168.0.0/16 -> discard   # malicious domain blocked
require I in 0 && S in !224.168.0.0/16 && D in 192.168.0.1 && N in 25 -> accept  # mail works
`

func TestVerifyPassAndFail(t *testing.T) {
	dir := t.TempDir()
	specFile := writeFile(t, dir, "spec.txt", theSpec)
	good := writeFile(t, dir, "good.fw", `
I in 0 && S in 224.168.0.0/16 -> discard
I in 0 && D in 192.168.0.1 && N in 25 -> accept
any -> accept
`)
	// Team A accepts malicious mail: violates property 1.
	teamA := writeFile(t, dir, "teamA.fw", `
I in 0 && D in 192.168.0.1 && N in 25 -> accept
I in 0 && S in 224.168.0.0/16 -> discard
any -> accept
`)
	if code := withArgs(t, "-schema", "paper", "-spec", specFile, good); code != 0 {
		t.Fatalf("good policy: exit = %d, want 0", code)
	}
	if code := withArgs(t, "-schema", "paper", "-spec", specFile, teamA); code != 1 {
		t.Fatalf("team A: exit = %d, want 1", code)
	}
}

func TestVerifyErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeFile(t, dir, "p.fw", "any -> accept\n")
	if code := withArgs(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code := withArgs(t, good); code != 2 {
		t.Fatalf("missing -spec: exit = %d, want 2", code)
	}
	if code := withArgs(t, "-spec", filepath.Join(dir, "nope.txt"), good); code != 2 {
		t.Fatalf("missing spec file: exit = %d, want 2", code)
	}
	contradictory := writeFile(t, dir, "bad.txt", `
require N in 25 -> accept
require S in 224.168.0.0/16 -> discard
`)
	if code := withArgs(t, "-schema", "paper", "-spec", contradictory, good); code != 2 {
		t.Fatalf("contradictory spec: exit = %d, want 2", code)
	}
	garbage := writeFile(t, dir, "garbage.txt", "zork\n")
	if code := withArgs(t, "-spec", garbage, good); code != 2 {
		t.Fatalf("garbage spec: exit = %d, want 2", code)
	}
}
