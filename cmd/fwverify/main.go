// Command fwverify checks a firewall policy against a mechanized
// requirement specification: a file of "require <predicate> -> <decision>"
// properties (see docs/FORMATS.md). Every violated property is reported
// with a concrete witness packet. This is the design-phase gate the
// paper's premise motivates — an informal spec that both teams read
// differently becomes a file both teams' drafts are checked against.
//
// Usage:
//
//	fwverify [-schema five|four|paper] -spec spec.txt policy.fw
//
// Exit status is 0 when every property holds, 1 on violations, and 2 on
// usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"diversefw/internal/cli"
	"diversefw/internal/interval"
	"diversefw/internal/rule"
	"diversefw/internal/spec"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwverify", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	specPath := fs.String("spec", "", "requirement specification file (required)")
	format := fs.String("format", "text", "input format: text, iptables")
	chain := fs.String("chain", "INPUT", "chain to read when -format iptables")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwverify [-schema name] -spec spec.txt policy.fw")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 1 || *specPath == "" {
		fs.Usage()
		return 2
	}

	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwverify:", err)
		return 2
	}
	sf, err := os.Open(*specPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwverify:", err)
		return 2
	}
	sp, err := spec.Parse(schema, sf)
	sf.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwverify:", err)
		return 2
	}
	if err := sp.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "fwverify: inconsistent specification:", err)
		return 2
	}
	p, err := cli.LoadPolicyFormat(schema, fs.Arg(0), *format, *chain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwverify:", err)
		return 2
	}

	res, err := sp.Check(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwverify:", err)
		return 2
	}
	fmt.Printf("%d properties checked; spec constrains %.1f%% of the packet space\n",
		len(sp.Properties), res.CoveredFraction*100)
	if res.Satisfied() {
		fmt.Println("all properties hold")
		return 0
	}
	for _, v := range res.Violations {
		prop := sp.Properties[v.Property]
		fmt.Printf("VIOLATED property %d", v.Property+1)
		if prop.Comment != "" {
			fmt.Printf(" (%s)", prop.Comment)
		}
		fmt.Printf(": required %v, got %v\n", prop.Decision, v.Got)
		fmt.Printf("  witness packet:")
		for fi, val := range v.Witness {
			f := schema.Field(fi)
			fmt.Printf(" %s=%s", f.Name, rule.FormatValueSet(f, interval.SetFromInterval(interval.Point(val))))
		}
		fmt.Println()
	}
	return 1
}
