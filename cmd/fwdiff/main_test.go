package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"diversefw/internal/trace"
)

// writeFile drops a fixture into the test's temp dir.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// withArgs runs run() with the given command line.
func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwdiff"}, args...)
	return run()
}

const teamA = `
dst in 192.168.0.1 && dport in 25 -> accept
src in 224.168.0.0/16 -> discard
any -> accept
`

const teamB = `
src in 224.168.0.0/16 -> discard
dst in 192.168.0.1 && dport in 25 && proto in tcp -> accept
dst in 192.168.0.1 -> discard
any -> accept
`

func TestRunDifferingPolicies(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.fw", teamA)
	b := writeFile(t, dir, "b.fw", teamB)
	if code := withArgs(t, a, b); code != 1 {
		t.Fatalf("exit = %d, want 1 (policies differ)", code)
	}
	if code := withArgs(t, "-v", a, b); code != 1 {
		t.Fatalf("verbose exit = %d, want 1", code)
	}
	if code := withArgs(t, "-json", a, b); code != 1 {
		t.Fatalf("json exit = %d, want 1", code)
	}
	if code := withArgs(t, "-json", a, a); code != 0 {
		t.Fatalf("json equivalent exit = %d, want 0", code)
	}
}

func TestRunEquivalentPolicies(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.fw", teamA)
	a2 := writeFile(t, dir, "a2.fw", teamA)
	if code := withArgs(t, a, a2); code != 0 {
		t.Fatalf("exit = %d, want 0 (equivalent)", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.fw", teamA)
	if code := withArgs(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code := withArgs(t, a); code != 2 {
		t.Fatalf("one arg: exit = %d, want 2", code)
	}
	if code := withArgs(t, "-schema", "bogus", a, a); code != 2 {
		t.Fatalf("bad schema: exit = %d, want 2", code)
	}
	if code := withArgs(t, a, filepath.Join(dir, "missing.fw")); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
	bad := writeFile(t, dir, "bad.fw", "not a rule\n")
	if code := withArgs(t, a, bad); code != 2 {
		t.Fatalf("parse error: exit = %d, want 2", code)
	}
	partial := writeFile(t, dir, "partial.fw", "dport in 25 -> accept\n")
	if code := withArgs(t, a, partial); code != 2 {
		t.Fatalf("non-comprehensive: exit = %d, want 2", code)
	}
}

// TestRunTraceFile checks -trace writes a span tree holding the whole
// pipeline: the engine's diff span with construct, shape, and compare
// children carrying FDD stats.
func TestRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	a := writeFile(t, dir, "a.fw", teamA)
	b := writeFile(t, dir, "b.fw", teamB)
	out := filepath.Join(dir, "trace.json")
	if code := withArgs(t, "-trace", out, a, b); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc trace.FileDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].Root.Name != "fwdiff" {
		t.Fatalf("unexpected trace doc: %+v", doc)
	}
	root := doc.Traces[0].Root
	for _, name := range []string{"construct", "shape", "compare"} {
		if _, ok := root.Find(name); !ok {
			t.Fatalf("trace missing %q span:\n%s", name, raw)
		}
	}
	cons, _ := root.Find("construct")
	if _, ok := cons.Attrs["nodes"]; !ok {
		t.Fatalf("construct span missing nodes attr: %v", cons.Attrs)
	}
}

func TestRunIptablesFormat(t *testing.T) {
	dir := t.TempDir()
	ipt := `
-P INPUT DROP
-A INPUT -d 192.168.0.1 -p tcp --dport 25 -j ACCEPT
`
	a := writeFile(t, dir, "a.rules", ipt)
	b := writeFile(t, dir, "b.rules", ipt)
	if code := withArgs(t, "-format", "iptables", a, b); code != 0 {
		t.Fatalf("identical iptables chains: exit = %d, want 0", code)
	}
	if code := withArgs(t, "-format", "bogus", a, b); code != 2 {
		t.Fatalf("bad format: exit = %d, want 2", code)
	}
}
