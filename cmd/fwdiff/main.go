// Command fwdiff compares two firewall policy files and prints every
// functional discrepancy between them — the comparison phase of diverse
// firewall design, in the format of the paper's Table 3.
//
// Usage:
//
//	fwdiff [-schema five|four|paper] [-format name] [-v] [-json]
//	       [-trace trace.json] a.fw b.fw
//
// -trace writes the run's span tree (construct/shape/compare with FDD
// node counts and discrepancy stats) to the named file; load it with
// docs/OBSERVABILITY.md's reading guide or feed the spans to jq.
//
// Exit status is 0 when the policies are equivalent, 1 when they differ,
// and 2 on usage or input errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"diversefw/internal/api"
	"diversefw/internal/cli"
	"diversefw/internal/engine"
	"diversefw/internal/textio"
	"diversefw/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwdiff", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	format := fs.String("format", "text", "input format: "+cli.FormatNames())
	chain := fs.String("chain", "INPUT", "chain to read for iptables/nftables inputs")
	verbose := fs.Bool("v", false, "print per-phase timing and path statistics")
	jsonOut := fs.Bool("json", false, "emit the report as JSON (the /v1/diff wire format)")
	traceFile := fs.String("trace", "", "write the run's span tree to this file as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwdiff [-schema name] [-format name] [-v] [-trace file] a.fw b.fw")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwdiff:", err)
		return 2
	}
	pa, err := cli.LoadPolicyFormat(schema, fs.Arg(0), *format, *chain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwdiff:", err)
		return 2
	}
	pb, err := cli.LoadPolicyFormat(schema, fs.Arg(1), *format, *chain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwdiff:", err)
		return 2
	}

	// One-shot runs gain nothing from the cache, but going through the
	// engine keeps the CLI on the same code path the server uses.
	ctx := context.Background()
	var tr *trace.Trace
	if *traceFile != "" {
		ctx, tr = trace.New(ctx, "fwdiff", "")
	}
	report, _, err := engine.New(engine.Config{}).DiffPolicies(ctx, pa, pb)
	if tr != nil {
		tr.Finish()
		// A failed trace write shouldn't mask the comparison result.
		if werr := trace.WriteFileJSON(*traceFile, tr.Snapshot()); werr != nil {
			fmt.Fprintln(os.Stderr, "fwdiff: writing trace:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwdiff:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(api.ConvertReport(schema, report)); err != nil {
			fmt.Fprintln(os.Stderr, "fwdiff:", err)
			return 2
		}
		if report.Equivalent() {
			return 0
		}
		return 1
	}

	nameA := filepath.Base(fs.Arg(0))
	nameB := filepath.Base(fs.Arg(1))
	if err := textio.WriteDiscrepancyTable(os.Stdout, schema, report.Discrepancies, nameA, nameB); err != nil {
		fmt.Fprintln(os.Stderr, "fwdiff:", err)
		return 2
	}
	if *verbose {
		fmt.Printf("\npaths compared: %d (differing before merge: %d)\n", report.PathsCompared, report.RawPaths)
		fmt.Printf("construction %v, shaping %v, comparison %v (total %v)\n",
			report.Timing.Construct, report.Timing.Shape, report.Timing.Compare, report.Timing.Total())
	}
	if report.Equivalent() {
		return 0
	}
	return 1
}
