package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwquery"}, args...)
	return run()
}

func TestQueryRuns(t *testing.T) {
	dir := t.TempDir()
	fw := writeFile(t, dir, "p.fw", `
dst in 192.168.0.1 && dport in 25 && proto in tcp -> accept
any -> discard
`)
	if code := withArgs(t, fw, "select dport where dst in 192.168.0.1 decision accept"); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	// Empty result is still success.
	if code := withArgs(t, fw, "select dport where src in 1.2.3.4 && proto in udp decision accept"); code != 0 {
		t.Fatalf("empty result: exit = %d, want 0", code)
	}
}

func TestQueryErrors(t *testing.T) {
	dir := t.TempDir()
	fw := writeFile(t, dir, "p.fw", "any -> accept\n")
	if code := withArgs(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code := withArgs(t, fw, "gibberish"); code != 2 {
		t.Fatalf("bad query: exit = %d, want 2", code)
	}
	if code := withArgs(t, filepath.Join(dir, "missing.fw"), "select dport decision accept"); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
	if code := withArgs(t, "-schema", "zzz", fw, "select dport decision accept"); code != 2 {
		t.Fatalf("bad schema: exit = %d, want 2", code)
	}
}
