// Command fwquery runs firewall queries (the paper's reference [20])
// against a policy file: exact, FDD-based answers to questions like
// "which destination ports are accepted into the DMZ?".
//
// Usage:
//
//	fwquery [-schema five|four|paper] policy.fw 'select dport where dst in 10.0.0.0/8 decision accept'
//
// The query grammar is
//
//	select <field> [where <conjuncts>] decision <decision>
//
// with <conjuncts> in the rule file syntax ("src in 1.2.3.0/24 && proto
// in tcp").
package main

import (
	"flag"
	"fmt"
	"os"

	"diversefw/internal/cli"
	"diversefw/internal/query"
	"diversefw/internal/rule"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwquery", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwquery [-schema name] policy.fw 'select <field> [where <cond>] decision <dec>'")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}

	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwquery:", err)
		return 2
	}
	p, err := cli.LoadPolicy(schema, fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwquery:", err)
		return 2
	}
	q, err := query.Parse(schema, fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwquery:", err)
		return 2
	}
	result, err := query.RunPolicy(p, q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwquery:", err)
		return 2
	}
	if result.Empty() {
		fmt.Println("(empty)")
		return 0
	}
	fmt.Println(rule.FormatValueSet(schema.Field(q.Select), result))
	return 0
}
