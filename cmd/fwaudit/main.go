// Command fwaudit lints a single firewall policy with the analyses a
// design team runs before the comparison phase: pairwise anomaly
// detection (shadowing / generalization / correlation / pairwise
// redundancy, per reference [1]), exact union-shadowing detection, and
// complete redundancy detection ([19]).
//
// Usage:
//
//	fwaudit [-schema five|four|paper] [-format name] policy.fw
//
// Exit status is 0 for a clean policy, 1 when findings are reported, and
// 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"diversefw/internal/anomaly"
	"diversefw/internal/cli"
	"diversefw/internal/redundancy"
	"diversefw/internal/rule"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("fwaudit", flag.ContinueOnError)
	schemaName := fs.String("schema", "five", "packet schema: "+cli.SchemaNames())
	format := fs.String("format", "text", "input format: "+cli.FormatNames())
	chain := fs.String("chain", "INPUT", "chain to read for iptables/nftables inputs")
	complete := fs.Bool("complete", true, "also run the complete (semantic) redundancy check")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fwaudit [-schema name] [-format name] policy.fw")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	schema, err := cli.Schema(*schemaName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwaudit:", err)
		return 2
	}
	p, err := cli.LoadPolicyFormat(schema, fs.Arg(0), *format, *chain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwaudit:", err)
		return 2
	}

	findings := 0

	anomalies := anomaly.Detect(p)
	if len(anomalies) > 0 {
		fmt.Printf("pairwise anomalies (%d):\n", len(anomalies))
		for _, a := range anomalies {
			fmt.Printf("  %s\n", a)
			fmt.Printf("    rule %d: %s\n", a.I+1, rule.FormatRule(p.Schema, p.Rules[a.I]))
			fmt.Printf("    rule %d: %s\n", a.J+1, rule.FormatRule(p.Schema, p.Rules[a.J]))
		}
		findings += len(anomalies)
	}

	shadowed, err := anomaly.CompletelyShadowed(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fwaudit:", err)
		return 2
	}
	if len(shadowed) > 0 {
		fmt.Printf("rules that are never a first match (%d):\n", len(shadowed))
		for _, i := range shadowed {
			fmt.Printf("  rule %d: %s\n", i+1, rule.FormatRule(p.Schema, p.Rules[i]))
		}
		findings += len(shadowed)
	}

	if *complete {
		compacted, removed, err := redundancy.RemoveAll(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fwaudit:", err)
			return 2
		}
		if len(removed) > 0 {
			fmt.Printf("semantically redundant rules (%d removable; %d -> %d rules):\n",
				len(removed), p.Size(), compacted.Size())
			for _, i := range removed {
				fmt.Printf("  rule %d: %s\n", i+1, rule.FormatRule(p.Schema, p.Rules[i]))
			}
			findings += len(removed)
		}
	}

	if findings == 0 {
		fmt.Println("no findings: no anomalies, no shadowed rules, no redundancy")
		return 0
	}
	return 1
}
