package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func withArgs(t *testing.T, args ...string) int {
	t.Helper()
	old := os.Args
	defer func() { os.Args = old }()
	os.Args = append([]string{"fwaudit"}, args...)
	return run()
}

func TestAuditFindsProblems(t *testing.T) {
	dir := t.TempDir()
	// Shadowed rule + semantically redundant rule.
	fw := writeFile(t, dir, "messy.fw", `
src in 10.0.0.0/8 -> accept
src in 10.1.0.0/16 -> discard
dst in 8.8.8.8 -> accept
any -> accept
`)
	if code := withArgs(t, fw); code != 1 {
		t.Fatalf("exit = %d, want 1 (findings)", code)
	}
}

func TestAuditCleanPolicy(t *testing.T) {
	dir := t.TempDir()
	fw := writeFile(t, dir, "clean.fw", `
src in 224.168.0.0/16 -> discard
any -> accept
`)
	if code := withArgs(t, fw); code != 0 {
		t.Fatalf("exit = %d, want 0 (clean)", code)
	}
}

func TestAuditErrors(t *testing.T) {
	if code := withArgs(t); code != 2 {
		t.Fatalf("no args: exit = %d, want 2", code)
	}
	if code := withArgs(t, "/nonexistent.fw"); code != 2 {
		t.Fatalf("missing file: exit = %d, want 2", code)
	}
	dir := t.TempDir()
	partial := writeFile(t, dir, "partial.fw", "dport in 25 -> accept\n")
	if code := withArgs(t, partial); code != 2 {
		t.Fatalf("non-comprehensive: exit = %d, want 2", code)
	}
}
