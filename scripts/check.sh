#!/usr/bin/env sh
# Tier-1 gate plus the race gate: everything a PR must pass locally.
# The -race run matters because the pipeline fans out across goroutines
# (compare.Diff constructs concurrently; shaping and the lockstep walk
# shard per root edge; CrossCompare bounds a worker pool) and several
# tests raise GOMAXPROCS to force those paths even on 1-CPU machines.
set -eu
cd "$(dirname "$0")/.."

# Formatting is part of the gate: gofmt -l prints nothing when clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not gofmt-formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
