#!/usr/bin/env sh
# Tier-1 gate plus the race gate: everything a PR must pass locally.
# The -race run matters because the pipeline fans out across goroutines
# (compare.Diff constructs concurrently; shaping and the lockstep walk
# shard per root edge; CrossCompare bounds a worker pool) and several
# tests raise GOMAXPROCS to force those paths even on 1-CPU machines.
set -eu
cd "$(dirname "$0")/.."

# Formatting is part of the gate: gofmt -l prints nothing when clean.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files are not gofmt-formatted:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# The observability primitives are the layer every request path shares,
# so their concurrency tests rerun uncached: a flaky span buffer or
# histogram race must not hide behind a stale test-cache entry.
GOFLAGS=-count=1 go vet ./internal/trace/...
GOFLAGS=-count=1 go test -race ./internal/trace/... ./internal/metrics/...

# The chaos stress storm also reruns uncached: it drives randomized
# fault injection (latency, budget exhaustion, cache-insert failures,
# client hangups) through a real HTTP server and asserts the system
# degrades without leaks or cache poisoning — exactly the kind of test
# whose cached "ok" means nothing.
go test -race -count=1 -run 'TestChaosStress' ./internal/api/

# The async-job lifecycle storm likewise reruns uncached: concurrent
# /v1/jobs submissions with faults firing inside pair workers and
# random mid-flight cancellations, asserting every job lands in a
# terminal state, failed pairs coexist with completed siblings, and
# the worker pool leaks no goroutines after shutdown.
go test -race -count=1 -run 'TestJobsChaos' ./internal/api/

# One-iteration fuzz passes over the policy frontends: the parsers face
# arbitrary config text from the network (nftables rulesets, cloud
# security-group JSON, iptables dumps), so each corpus entry re-runs
# through the no-panic/round-trip properties on every gate.
go test -run=NONE -fuzz=FuzzNftables -fuzztime=1x ./internal/frontend/
go test -run=NONE -fuzz=FuzzSecgroup -fuzztime=1x ./internal/frontend/
go test -run=NONE -fuzz=FuzzImport -fuzztime=1x ./internal/iptables/

# The journal replayer faces arbitrary bytes after a crash (torn tails,
# bit rot, garbage), so its corpus — seeded with the testdata/journal
# corruption fixtures — re-runs through the never-panic/always-report
# property on every gate too.
go test -run=NONE -fuzz=FuzzJournalReplay -fuzztime=1x ./internal/jobs/

# The crash-restart test SIGKILLs a journaled server mid-job and
# asserts the restarted process resumes without recomputing or
# double-settling pairs. It reruns uncached under the race detector:
# it is the end-to-end proof of the durable store and a cached "ok"
# from a previous binary proves nothing about this one.
go test -race -count=1 -run 'TestCrashRestartResumesWithoutDuplicateSettles' ./cmd/fwserved/

# The incremental-recompilation differential also reruns uncached under
# the race detector: hundreds of randomized policy/edit-script pairs
# asserting that resuming a checkpointed builder is graph-isomorphic to
# scratch construction — the correctness proof for the edits fast path.
go test -race -count=1 -run 'TestIncrementalDifferential' ./internal/impact/

# Performance gate: the pipeline must stay within 12% of the last
# committed snapshot on the gated phases, after rescaling the baseline
# by the machine-calibration ratio both snapshots record (this box's
# absolute timings drift by tens of percent between sessions on
# byte-identical workloads; BENCH_4 was the first calibrated snapshot).
# The envelope is set just above this box's measured same-binary noise:
# back-to-back runs of one unchanged binary swing +/-10-12% per phase
# even after calibration (see the BENCH_7 note in EXPERIMENTS.md), so a
# 5% gate fails on noise alone, while the regressions the gate exists
# to catch (a resume path quietly rebuilding from scratch, a cache
# stopping to coalesce) overshoot any sane envelope by multiples.
# impact_incremental_tail is gated so the edit-to-diff fast path cannot
# silently rot back toward from-scratch cost, and
# crosscompare_16x_sharded_4_workers so the async-job coordinator's
# scheduling and compile-cache coalescing cannot either. Skippable for
# doc-only loops (SKIP_BENCH_GATE=1) — CI always runs it.
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

if [ "${SKIP_BENCH_GATE:-}" != "1" ]; then
    go run ./cmd/fwbench -json -out "$tmpdir/bench" \
        -baseline results/BENCH_8.json -gate 12 \
        -gatephases construct,compare,impact_incremental_tail,crosscompare_16x_sharded_4_workers
fi

# Scenario-matrix gate: the seeded scenario matrix (overload, cache-cold
# storm, adversarial policies, chaos fault flake, drain under load) runs
# in fast mode — 1 rerun at 0.4 load scale — with per-run SLO assertions.
# The full matrix (3 reruns, full load, cross-run variance gate) is the
# release-candidate run; see EXPERIMENTS.md. Provenance (commit, Go
# version, calibration ratio) lands next to the committed benchmark
# snapshots so a red gate is attributable to a machine, not a mystery.
# Skippable for doc-only loops (SKIP_SCEN_GATE=1) — CI always runs it.
if [ "${SKIP_SCEN_GATE:-}" != "1" ]; then
    go run ./cmd/fwscen -fast -out "$tmpdir/scen" \
        -baseline results/BENCH_8.json
    cp "$tmpdir/scen/provenance.json" results/provenance.json
fi
