module diversefw

go 1.22
