// Package diversefw is a complete Go implementation of "Diverse Firewall
// Design" (Liu & Gouda; DSN 2004, extended in IEEE TPDS 19(9), 2008):
// exact comparison of firewall policies via Firewall Decision Diagrams,
// the three-phase diverse design method (design, comparison, resolution),
// and firewall change-impact analysis — plus every substrate the paper's
// method and evaluation build on.
//
// The root package carries the repository-level benchmark suite
// (bench_test.go: one group per table and figure of the paper's
// evaluation) and the end-to-end integration tests. The library lives
// under internal/ — see README.md for the architecture map, DESIGN.md for
// the system inventory and experiment index, EXPERIMENTS.md for
// paper-vs-measured results, and docs/FORMATS.md for the file formats.
//
// Entry points:
//
//   - internal/core: the multi-team Session workflow and change-impact
//     facade.
//   - internal/compare: Diff (two firewalls), CrossCompare and DiffN
//     (N teams).
//   - internal/resolve: the resolution phase generating the final,
//     verified firewall.
//   - cmd/: fwdiff, fwimpact, fwresolve, fwquery, fwaudit, fwtopo, fwgen,
//     fwcompile, fwbench, fwserved.
package diversefw
